// Tests for the always-on telemetry layer (telemetry.h, flight_recorder.h):
// histogram bucketing and quantile error bounds, merge semantics, the
// multi-threaded Add hammer (run under TSan in CI), gauge integration, the
// flight recorder ring, and the digest-invariance contract — same-seed runs
// must produce identical event-stream digests with telemetry on or off.
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/telemetry.h"
#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/simcore/flight_recorder.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace monotrace {
namespace {

// Restores the global telemetry switch so a failing test can't poison others.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool enabled) : was_(TelemetryEnabled()) {
    SetTelemetryEnabled(enabled);
  }
  ~ScopedTelemetry() { SetTelemetryEnabled(was_); }

 private:
  bool was_;
};

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  int last = -1;
  for (double v = LatencyHistogram::kMinValue; v < 1e9; v *= 1.04) {
    const int index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, last) << "at value " << v;
    EXPECT_LT(index, LatencyHistogram::kNumBuckets);
    last = index;
  }
}

TEST(LatencyHistogramTest, BucketValueRoundTrips) {
  // The representative value of a bucket must map back into that bucket.
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::BucketValue(i)), i)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, PathologicalSamplesClampToLowestBucket) {
  LatencyHistogram h;
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3u);
  // All three landed in bucket 0: the quantile witness is the smallest value.
  EXPECT_LE(h.Quantile(1.0), LatencyHistogram::BucketValue(0) * 2);
}

TEST(LatencyHistogramTest, QuantileWithinRelativeErrorBound) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Add(static_cast<double>(i) * 1e-3);  // Uniform on (0, 10].
  }
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.sum(), 50005.0 * 1e-3 * 1000, 1e-6);
  // Log-bucketed with 8 sub-buckets: worst-case relative error ~12.5%.
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 5.0 * 0.13);
  EXPECT_NEAR(h.Quantile(0.9), 9.0, 9.0 * 0.13);
  EXPECT_NEAR(h.Quantile(0.99), 9.9, 9.9 * 0.13);
}

TEST(LatencyHistogramTest, MergeIsElementwiseAddition) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) {
    a.Add(0.001);
    b.Add(1000.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.sum(), 100 * 0.001 + 100 * 1000.0, 1e-9);
  // Quantiles see both populations: the median splits them.
  EXPECT_LT(a.Quantile(0.25), 0.01);
  EXPECT_GT(a.Quantile(0.75), 100.0);
}

TEST(LatencyHistogramTest, ResetZeroes) {
  LatencyHistogram h;
  h.Add(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// The TSan target: concurrent Add on one histogram and one counter from many
// threads must be race-free and lose no samples (Adds are relaxed atomics).
TEST(LatencyHistogramTest, ConcurrentAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50000;
  LatencyHistogram h;
  MetricCounter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &counter, t] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        h.Add(1e-3 * static_cast<double>(1 + ((t + i) % 1000)));
        counter.Add(1.0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_DOUBLE_EQ(counter.value(), static_cast<double>(kThreads) * kAddsPerThread);
}

TEST(TimeWeightedGaugeTest, IntegratesStepFunction) {
  TimeWeightedGauge g;
  g.Set(0.0, 2.0);   // 2 over [0, 10): 20.
  g.Set(10.0, 6.0);  // 6 over [10, 20): 60.
  g.Set(20.0, 0.0);
  EXPECT_DOUBLE_EQ(g.integral(), 80.0);
  EXPECT_DOUBLE_EQ(g.TimeWeightedMean(), 4.0);
  EXPECT_DOUBLE_EQ(g.last(), 0.0);
  EXPECT_DOUBLE_EQ(g.max(), 6.0);
}

TEST(TimeWeightedGaugeTest, TimeMovingBackwardsRebases) {
  TimeWeightedGauge g;
  g.Set(100.0, 5.0);
  g.Set(110.0, 5.0);  // 50 accrued.
  // A fresh Simulation restarts the timeline at 0: the gauge re-bases onto the
  // new window (it must never accrue 5 * (0 - 110) = -550). The integral and
  // mean then describe the current timeline only.
  g.Set(0.0, 3.0);
  g.Set(10.0, 3.0);
  EXPECT_DOUBLE_EQ(g.integral(), 30.0);
  EXPECT_DOUBLE_EQ(g.TimeWeightedMean(), 3.0);
}

TEST(MetricsRegistryTest, SnapshotCarriesAllThreeSections) {
  MetricsRegistry registry;
  registry.Get("test.counter")->Add(7.0);
  registry.Histogram("test.hist")->Add(0.5);
  registry.Gauge("test.gauge")->Set(0.0, 1.0);
  registry.Gauge("test.gauge")->Set(2.0, 3.0);
  const TelemetrySnapshot snap = registry.TakeTelemetrySnapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_DOUBLE_EQ(snap.counters.at("test.counter"), 7.0);
  ASSERT_EQ(snap.histograms.count("test.hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.hist").count, 1u);
  ASSERT_EQ(snap.gauges.count("test.gauge"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.gauge").last, 3.0);
  // The JSON form mentions each name and parses as one object per line family.
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\""), std::string::npos);
}

TEST(MetricsRegistryTest, DisabledTelemetryStillCountsExplicitAdds) {
  // The kill switch gates *hook sites*, not the instruments: code that calls
  // Add directly still records. This pins that SetTelemetryEnabled(false)
  // never needs invasive plumbing — sites just check TelemetryEnabled().
  ScopedTelemetry off(false);
  MetricsRegistry registry;
  registry.Histogram("direct")->Add(1.0);
  EXPECT_EQ(registry.Histogram("direct")->count(), 1u);
}

TEST(FlightRecorderTest, RingKeepsNewestEntries) {
  monosim::FlightRecorder recorder;
  for (uint64_t i = 0; i < monosim::FlightRecorder::kCapacity + 10; ++i) {
    recorder.Record(monoutil::SimTime(static_cast<double>(i)), i, "evt", i);
  }
  EXPECT_EQ(recorder.total_recorded(),
            monosim::FlightRecorder::kCapacity + 10);
  const auto trail = recorder.Trail();
  ASSERT_EQ(trail.size(), monosim::FlightRecorder::kCapacity);
  // Oldest first: the first retained entry is #10, the last is the newest.
  EXPECT_EQ(trail.front().seq, 10u);
  EXPECT_EQ(trail.back().seq, monosim::FlightRecorder::kCapacity + 9);
}

TEST(FlightRecorderTest, ClearEmptiesTrail) {
  monosim::FlightRecorder recorder;
  recorder.Record(monoutil::Seconds(1.0), 1, "evt", 42);
  recorder.Clear();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.Trail().empty());
}

// Runs the same small sort job under the monotasks executor and returns its
// event-stream digest.
uint64_t SortDigest() {
  monosim::SimEnvironment env(monoload::SmallHddClusterConfig());
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(1);
  return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params)).sim_digest;
}

// The contract the bench also enforces: telemetry observes the schedule but
// never changes it, so same-seed digests are bit-identical on vs. off.
TEST(TelemetryDigestTest, SameSeedDigestIdenticalOnVsOff) {
  uint64_t digest_on = 0;
  uint64_t digest_off = 0;
  {
    ScopedTelemetry on(true);
    digest_on = SortDigest();
  }
  {
    ScopedTelemetry off(false);
    digest_off = SortDigest();
  }
  EXPECT_EQ(digest_on, digest_off);
  EXPECT_NE(digest_on, 0u);
}

}  // namespace
}  // namespace monotrace
