// MUST NOT COMPILE: passing a throughput where a time span is expected. This
// is the historical shape of the time_scale/bandwidth mix-up: both were bare
// doubles, so a swapped argument type-checked and quietly skewed the model by
// orders of magnitude. CTest builds this target with WILL_FAIL.
#include "src/common/units.h"

namespace {
double ChargeWindow(monoutil::SimTime window) { return window.seconds(); }
}  // namespace

int main() {
  monoutil::BytesPerSecond link = monoutil::Gbps(1.0);
  // error: BytesPerSecond is not convertible to SimTime.
  return static_cast<int>(ChargeWindow(link));
}
