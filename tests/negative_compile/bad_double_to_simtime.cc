// MUST NOT COMPILE: implicit conversion from a raw double into SimTime. The
// constructors are explicit on purpose — a bare `3.5` carries no unit, so call
// sites must say Seconds(3.5) / Millis(3.5) and make the unit part of the
// code. CTest builds this target with WILL_FAIL.
#include "src/common/units.h"

namespace {
void Sleep(monoutil::SimTime duration) { (void)duration; }
}  // namespace

int main() {
  // error: explicit constructor — no implicit double -> SimTime.
  monoutil::SimTime t = 3.5;
  // error: same, at a call boundary (milliseconds? seconds? the type refuses
  // to guess).
  Sleep(3.5);
  return static_cast<int>(t.seconds());
}
