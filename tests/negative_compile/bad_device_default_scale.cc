// MUST NOT COMPILE: constructing a SimulatedBlockDevice without stating its
// time_scale. The parameter used to default to 1.0 while EngineConfig defaults
// to 50.0 — a device built through the default silently ran 50x slower than
// its siblings and skewed the model bridge by the same factor. The default was
// removed; this target pins that it stays removed. CTest builds it WILL_FAIL.
#include "src/common/units.h"
#include "src/engine/block_device.h"

int main() {
  // error: no matching constructor — time_scale must be stated.
  monotasks::SimulatedBlockDevice device("d0", monoutil::MiBps(90));
  return device.bytes_read() == monoutil::Bytes(0) ? 0 : 1;
}
