// Control for the negative-compilation harness: this file uses the strong unit
// types the *intended* way and must compile. If this target ever fails to
// build, the harness itself is broken (bad include path, missing header, flag
// drift) — and every WILL_FAIL sibling would be "passing" for the wrong
// reason. CTest runs this target without WILL_FAIL to catch exactly that.
#include "src/common/units.h"
#include "src/engine/block_device.h"

namespace {

// The closed algebra: every conversion the §6 model performs, spelled with
// types. All constexpr so the compiler proves them without running anything.
constexpr monoutil::Bytes kData = monoutil::MiB(64);
constexpr monoutil::BytesPerSecond kDisk = monoutil::MiBps(128);
constexpr monoutil::SimTime kTransfer = kData / kDisk;            // Bytes / Rate -> Time
constexpr monoutil::BytesPerSecond kObserved = kData / kTransfer;  // Bytes / Time -> Rate
constexpr monoutil::Bytes kMoved = kDisk * kTransfer;              // Rate * Time -> Bytes
constexpr double kRatio = kTransfer / monoutil::Seconds(1.0);      // Time / Time -> scalar

static_assert(kTransfer.seconds() == 0.5);
static_assert(kMoved == kData);
static_assert(kObserved == kDisk);
static_assert(kRatio == 0.5);

// Constructing a device with every unit stated explicitly compiles.
monotasks::SimulatedBlockDevice MakeDevice() {
  return {"d0", monoutil::MiBps(90), /*time_scale=*/50.0};
}

}  // namespace

int main() {
  auto device = MakeDevice();
  return device.bytes_written() == monoutil::Bytes(0) ? 0 : 1;
}
