// MUST NOT COMPILE: adding a time to a byte count is dimensionally meaningless.
// Under the old `using SimTime = double; using Bytes = int64_t;` typedefs this
// was a silent double addition — the exact class of bug the strong types exist
// to stop. CTest builds this target with WILL_FAIL: a successful compile is
// the test failure.
#include "src/common/units.h"

int main() {
  monoutil::SimTime deadline = monoutil::Seconds(3.0);
  monoutil::Bytes payload = monoutil::MiB(1);
  // error: no operator+ for (SimTime, Bytes).
  auto nonsense = deadline + payload;
  return static_cast<int>(nonsense.seconds());
}
