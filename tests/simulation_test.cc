#include "src/simcore/simulation.h"

#include <vector>

#include <gtest/gtest.h>

namespace monosim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SimulationTest, FiresEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(1.0, [&] { order.push_back(2); });
  sim.ScheduleAt(1.0, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, ScheduleAfterUsesRelativeDelay) {
  Simulation sim;
  double fired_at = -1.0;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAfter(2.5, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulationTest, EventsScheduledDuringRunAreFired) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1.0, [&] {
    ++count;
    sim.ScheduleAfter(1.0, [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelIsIdempotentAndSafeAfterFiring) {
  Simulation sim;
  int fired = 0;
  EventHandle handle = sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // Must not crash or double-fire.
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, EmptyHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(10.0, [&] { ++fired; });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilFiresEventExactlyAtDeadline) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(5.0, [&] { fired = true; });
  sim.RunUntil(5.0);
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, StepFiresOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, FiredEventsExcludesCancelled) {
  Simulation sim;
  sim.ScheduleAt(1.0, [] {});
  EventHandle handle = sim.ScheduleAt(2.0, [] {});
  handle.Cancel();
  sim.Run();
  EXPECT_EQ(sim.fired_events(), 1u);
}

}  // namespace
}  // namespace monosim
