#include "src/simcore/simulation.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/simcore/audit.h"

namespace monosim {
namespace {

// Test double that records which audit phases the kernel swept it through.
class PhaseRecorder : public Auditable {
 public:
  explicit PhaseRecorder(Simulation* sim) : sim_(sim) { sim_->RegisterAuditable(this); }
  ~PhaseRecorder() override { sim_->UnregisterAuditable(this); }

  void AuditInvariants(SimAudit& audit, AuditPhase phase) const override {
    audit.Expect(true, sim_->now(), "phase-recorder", "noop", "");
    if (phase == AuditPhase::kDrain) {
      ++drain_sweeps_;
    }
  }

  int drain_sweeps() const { return drain_sweeps_; }

 private:
  Simulation* sim_;
  mutable int drain_sweeps_ = 0;
};

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 0.0);
}

TEST(SimulationTest, FiresEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(monoutil::Seconds(2.0), [&] { order.push_back(2); });
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(monoutil::Seconds(3.0), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { order.push_back(1); });
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { order.push_back(2); });
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, ScheduleAfterUsesRelativeDelay) {
  Simulation sim;
  double fired_at = -1.0;
  sim.ScheduleAt(monoutil::Seconds(5.0), [&] {
    sim.ScheduleAfter(monoutil::Seconds(2.5), [&] { fired_at = sim.now().seconds(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulationTest, EventsScheduledDuringRunAreFired) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] {
    ++count;
    sim.ScheduleAfter(monoutil::Seconds(1.0), [&] { ++count; });
  });
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.ScheduleAt(monoutil::Seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelIsIdempotentAndSafeAfterFiring) {
  Simulation sim;
  int fired = 0;
  EventHandle handle = sim.ScheduleAt(monoutil::Seconds(1.0), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // Must not crash or double-fire.
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, EmptyHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { ++fired; });
  sim.ScheduleAt(monoutil::Seconds(10.0), [&] { ++fired; });
  sim.RunUntil(monoutil::Seconds(5.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 5.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, RunUntilFiresEventExactlyAtDeadline) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(monoutil::Seconds(5.0), [&] { fired = true; });
  sim.RunUntil(monoutil::Seconds(5.0));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, StepFiresOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { ++fired; });
  sim.ScheduleAt(monoutil::Seconds(2.0), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, FiredEventsExcludesCancelled) {
  Simulation sim;
  sim.ScheduleAt(monoutil::Seconds(1.0), [] {});
  EventHandle handle = sim.ScheduleAt(monoutil::Seconds(2.0), [] {});
  handle.Cancel();
  sim.Run();
  EXPECT_EQ(sim.fired_events(), 1u);
}

TEST(SimulationTest, RunUntilTreatsCancelledOnlyRemainderAsDrained) {
  // Regression: a queue whose only remaining entries are cancelled tombstones
  // past the deadline must count as drained — the drain-phase audit sweeps run
  // exactly as if the queue were empty. (A naive deadline check that breaks
  // before discarding tombstones skips them.)
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  PhaseRecorder recorder(&sim);
  bool fired = false;
  sim.ScheduleAt(monoutil::Seconds(1.0), [&] { fired = true; });
  EventHandle beyond = sim.ScheduleAt(monoutil::Seconds(10.0), [] { FAIL() << "cancelled event fired"; });
  beyond.Cancel();
  sim.RunUntil(monoutil::Seconds(5.0));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.queue_size(), 0u);
  EXPECT_GE(recorder.drain_sweeps(), 1);
  EXPECT_DOUBLE_EQ(sim.now().seconds(), 5.0);
  EXPECT_TRUE(scoped.audit().ok()) << scoped.audit().Summary();
}

TEST(SimulationTest, RunUntilStillSkipsDrainWhileLiveEventsRemain) {
  ScopedAudit scoped(ScopedAudit::kReport);
  Simulation sim;
  PhaseRecorder recorder(&sim);
  sim.ScheduleAt(monoutil::Seconds(10.0), [] {});
  sim.RunUntil(monoutil::Seconds(5.0));
  EXPECT_EQ(recorder.drain_sweeps(), 0);
  sim.Run();
  EXPECT_GE(recorder.drain_sweeps(), 1);
}

TEST(SimulationTest, TombstoneCountTracksCancelledQueueEntries) {
  Simulation sim;
  EventHandle a = sim.ScheduleAt(monoutil::Seconds(1.0), [] {});
  EventHandle b = sim.ScheduleAt(monoutil::Seconds(2.0), [] {});
  EXPECT_EQ(sim.queued_tombstones(), 0u);
  a.Cancel();
  a.Cancel();  // Idempotent: must not double-count.
  EXPECT_EQ(sim.queued_tombstones(), 1u);
  EXPECT_EQ(sim.queue_size(), 2u);
  sim.Run();
  EXPECT_EQ(sim.queued_tombstones(), 0u);
  EXPECT_EQ(sim.queue_size(), 0u);
  b.Cancel();  // Already fired: not a tombstone.
  EXPECT_EQ(sim.queued_tombstones(), 0u);
}

TEST(SimulationTest, CompactionBoundsQueueUnderCancelHeavyChurn) {
  // The fabric's recompute pattern: every state change cancels the pending
  // completion event and schedules a replacement. Without compaction the queue
  // holds every tombstone until its virtual time arrives.
  Simulation sim;
  constexpr int kChurn = 100000;
  size_t max_queue = 0;
  EventHandle pending;
  for (int i = 0; i < kChurn; ++i) {
    pending.Cancel();
    pending = sim.ScheduleAt(monoutil::Seconds(1e9 + i), [] {});
    max_queue = std::max(max_queue, sim.queue_size());
  }
  // One live event; everything else must have been compacted away.
  EXPECT_LE(max_queue, Simulation::kCompactionMinQueueSize + 2);
  EXPECT_LE(sim.queued_tombstones(), sim.queue_size());
}

TEST(SimulationTest, CompactionCanBeDisabledForMeasurement) {
  Simulation sim;
  sim.set_compaction_enabled(false);
  EventHandle pending;
  for (int i = 0; i < 1000; ++i) {
    pending.Cancel();
    pending = sim.ScheduleAt(monoutil::Seconds(1e9 + i), [] {});
  }
  EXPECT_EQ(sim.queue_size(), 1000u);
  EXPECT_EQ(sim.queued_tombstones(), 999u);
}

TEST(SimulationTest, CompactionPreservesEventOrderAndPendingEvents) {
  // Force compactions while live events are interleaved with tombstones and
  // check nothing live is lost, reordered, or fired twice.
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 500; ++i) {
    sim.ScheduleAt(monoutil::Seconds(2.0 * i), [&order, i] { order.push_back(i); });
  }
  // More tombstones than live events, so the next schedule crosses the
  // tombstones-outnumber-live threshold and compacts.
  for (int i = 0; i < 600; ++i) {
    doomed.push_back(sim.ScheduleAt(monoutil::Seconds(1500.0 + i), [] { FAIL() << "cancelled event fired"; }));
  }
  for (EventHandle& handle : doomed) {
    handle.Cancel();
  }
  // Trigger compaction via new schedules now that tombstones dominate.
  for (int i = 0; i < 4; ++i) {
    sim.ScheduleAt(monoutil::Seconds(1000.0 + i), [] {});
  }
  EXPECT_LT(sim.queue_size(), 600u);  // Tombstones were dropped.
  sim.Run();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(sim.fired_events(), 504u);
}

}  // namespace
}  // namespace monosim
