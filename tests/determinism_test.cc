// Determinism regression tests for the event-stream digest (simulation.h).
//
// The digest folds every fired event's (time, sequence, tag) into an FNV-1a
// accumulator, so it is a witness of the whole schedule: two runs of the same
// scenario with the same seed must produce bit-identical digests, and any
// dependence on heap addresses, wall clock, or uncontrolled entropy shows up
// as a digest mismatch. These tests pin both directions — same-seed equality
// on realistic scenarios (the fig09 sort family) and sensitivity of the digest
// to schedule-order perturbations of the kind a pointer-ordered container
// would introduce.
#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/network.h"
#include "src/common/rng.h"
#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/simcore/simulation.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace monosim {
namespace {

using monoutil::MiB;

// A fast fig09-style sort scenario: same workload family as the bottleneck
// figure, scaled down to run in milliseconds.
monoload::SortParams SmallSortParams(uint64_t seed, int values_per_key) {
  monoload::SortParams params;
  params.total_bytes = MiB(256);
  params.values_per_key = values_per_key;
  params.num_map_tasks = 8;
  params.num_reduce_tasks = 8;
  params.seed = seed;
  return params;
}

struct RunWitness {
  uint64_t digest = 0;
  uint64_t fired = 0;
  double duration = 0;
};

// Runs the sort job from a fresh environment under the chosen architecture and
// returns the simulation's digest once the job completes.
RunWitness RunSort(bool monotasks, uint64_t seed, int values_per_key) {
  SimEnvironment env(monoload::SmallHddClusterConfig());
  const monoload::SortParams params = SmallSortParams(seed, values_per_key);
  JobSpec job = monoload::MakeSortJob(&env.dfs(), params);
  RunWitness witness;
  if (monotasks) {
    MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(&executor);
    witness.duration = env.driver().RunJob(std::move(job)).duration().seconds();
  } else {
    SparkExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(&executor);
    witness.duration = env.driver().RunJob(std::move(job)).duration().seconds();
  }
  witness.digest = env.sim().digest();
  witness.fired = env.sim().fired_events();
  return witness;
}

TEST(DeterminismTest, SameSeedSortRunsProduceIdenticalDigests) {
  for (const bool monotasks : {false, true}) {
    for (const int values_per_key : {10, 50}) {
      const RunWitness first = RunSort(monotasks, 7, values_per_key);
      const RunWitness second = RunSort(monotasks, 7, values_per_key);
      EXPECT_GT(first.fired, 0u);
      EXPECT_EQ(first.digest, second.digest)
          << (monotasks ? "monotasks" : "spark") << " sort, " << values_per_key
          << " values/key: same-seed reruns diverged";
      EXPECT_EQ(first.fired, second.fired);
      EXPECT_DOUBLE_EQ(first.duration, second.duration);
    }
  }
}

TEST(DeterminismTest, SameSeedFabricBurstChurnProducesIdenticalDigests) {
  // Regression for the fabric's batched incremental solver: all rate changes
  // are deferred to the epoch boundary and reach the event queue only through
  // the completion timer (tag "flow-complete"), whose schedule time is the
  // minimum of the completion index — never a function of flow iteration
  // order. Same-seed burst churn (many arrivals and departures sharing one
  // timestamp, repeatedly re-solved, patched, and batched) must therefore
  // produce bit-identical event-stream digests across runs.
  const auto run_churn = [](uint64_t seed) {
    Simulation sim;
    NetworkFabricSim fabric(&sim, /*num_machines=*/8,
                            /*nic_bandwidth=*/monoutil::BytesPerSecond(1e8));
    monoutil::Rng rng(seed);
    int completed = 0;
    // Six bursts of eight same-timestamp arrivals; every completion launches a
    // replacement a fixed delay later, so departures and arrivals keep landing
    // on shared timestamps deep into the run.
    std::function<void(int)> relaunch = [&](int remaining) {
      if (remaining == 0) {
        return;
      }
      const int src = static_cast<int>(rng.NextBelow(8));
      int dst = static_cast<int>(rng.NextBelow(7));
      if (dst >= src) {
        ++dst;
      }
      const auto bytes = monoutil::Bytes(static_cast<int64_t>(1 + rng.NextBelow(1 << 16)));
      fabric.StartFlow(src, dst, bytes, [&, remaining] {
        ++completed;
        relaunch(remaining - 1);
      });
    };
    for (int burst = 0; burst < 6; ++burst) {
      sim.ScheduleAt(monoutil::Seconds(0.01 * burst), [&relaunch] {
        for (int i = 0; i < 8; ++i) {
          relaunch(4);
        }
      });
    }
    sim.Run();
    EXPECT_EQ(completed, 6 * 8 * 4);
    return std::make_pair(sim.digest(), sim.fired_events());
  };
  const auto first = run_churn(21);
  const auto second = run_churn(21);
  EXPECT_EQ(first.first, second.first)
      << "same-seed fabric burst churn diverged: a rate-change schedule site "
         "depends on iteration order or unstable tags";
  EXPECT_EQ(first.second, second.second);
  const auto other_seed = run_churn(22);
  EXPECT_NE(first.first, other_seed.first)
      << "the seed does not reach the fabric schedule";
}

TEST(DeterminismTest, StrongUnitTypesPreservePreRefactorDigests) {
  // Oracle digests harvested from the raw-typedef units (pre strong-type
  // promotion). The wrappers hold exactly the representation the typedefs had
  // and every arithmetic expression was preserved operation-for-operation, so
  // the event schedule -- and therefore the digest -- must be bit-identical.
  struct Oracle {
    bool monotasks;
    int values_per_key;
    uint64_t digest;
    uint64_t fired;
  };
  static constexpr Oracle kOracles[] = {
      {false, 10, 18221792197980647928ull, 518},
      {false, 50, 17075344493688085432ull, 518},
      {true, 10, 11245428799122378917ull, 181},
      {true, 50, 6531501486197293149ull, 181},
  };
  for (const Oracle& oracle : kOracles) {
    const RunWitness witness = RunSort(oracle.monotasks, 7, oracle.values_per_key);
    EXPECT_EQ(witness.digest, oracle.digest)
        << (oracle.monotasks ? "monotasks" : "spark") << " sort, "
        << oracle.values_per_key
        << " values/key: schedule drifted from the pre-refactor oracle";
    EXPECT_EQ(witness.fired, oracle.fired);
  }
}

TEST(DeterminismTest, DifferentSeedsProduceDifferentDigests) {
  // Task-size jitter (job_spec.h) draws from the job Rng, so the seed reaches
  // event times and therefore the digest.
  const RunWitness a = RunSort(/*monotasks=*/true, 7, 20);
  const RunWitness b = RunSort(/*monotasks=*/true, 8, 20);
  EXPECT_NE(a.digest, b.digest)
      << "seed does not reach the schedule; jitter draws are being dropped";
}

TEST(DeterminismTest, DigestIsOrderSensitiveNotJustASet) {
  // Two runs firing the same multiset of (time, tag) events in different
  // sequence orders must disagree: the digest witnesses order, which is what
  // lets it catch container-iteration-order bugs.
  static constexpr std::array<const char*, 3> kTags = {"ev-a", "ev-b", "ev-c"};
  const auto run_in_order = [](const std::array<int, 3>& order) {
    Simulation sim;
    for (const int i : order) {
      sim.ScheduleAt(monoutil::Seconds(1.0), [] {}, kTags[i]);
    }
    sim.Run();
    return sim.digest();
  };
  const uint64_t forward = run_in_order({0, 1, 2});
  const uint64_t swapped = run_in_order({0, 2, 1});
  EXPECT_NE(forward, swapped);
}

TEST(DeterminismTest, PointerOrderedScheduleChangesDigest) {
  // Regression for the pointer-keyed-container bug class (mono_lint's
  // ptr-keyed-container / address-ordered rules): schedule the same logical
  // events in creation order and in heap-address order. Whenever the two
  // orders differ — which depends only on where the allocator placed the
  // nodes — the digests differ, i.e. an address-ordered schedule cannot hide
  // from the digest. The nested SimDigestTrail absorbs these deliberately
  // address-dependent runs so the suite-wide digest listener
  // (digest_listener.cc) does not compare them across --gtest_repeat runs.
  SimDigestTrail absorb_address_dependent_runs;

  struct Node {
    int index = 0;
  };
  static constexpr std::array<const char*, 4> kTags = {"node-0", "node-1",
                                                       "node-2", "node-3"};
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    auto node = std::make_unique<Node>();
    node->index = i;
    nodes.push_back(std::move(node));
  }

  const auto run_in_order = [&](const std::vector<Node*>& order) {
    Simulation sim;
    for (Node* node : order) {
      sim.ScheduleAt(monoutil::Seconds(1.0), [] {}, kTags[node->index]);
    }
    sim.Run();
    return sim.digest();
  };

  std::vector<Node*> creation_order;
  for (const auto& node : nodes) {
    creation_order.push_back(node.get());
  }
  std::vector<Node*> address_order = creation_order;
  std::sort(address_order.begin(), address_order.end());  // The bug: heap order.
  if (address_order == creation_order) {
    // The allocator happened to hand out ascending addresses; descending
    // address order is an equally legitimate "pointer-ordered" schedule and is
    // guaranteed to differ from creation order.
    std::reverse(address_order.begin(), address_order.end());
  }

  EXPECT_NE(run_in_order(creation_order), run_in_order(address_order))
      << "an address-ordered schedule produced the canonical digest";
}

TEST(DeterminismTest, DigestTrailRecordsEachSimulationDestruction) {
  SimDigestTrail outer;
  uint64_t digest = 0;
  {
    SimDigestTrail trail;
    {
      Simulation sim;
      sim.ScheduleAt(monoutil::Seconds(0.5), [] {}, "only");
      sim.Run();
      digest = sim.digest();
    }
    ASSERT_EQ(trail.entries().size(), 1u);
    EXPECT_EQ(trail.entries()[0].fired, 1u);
    EXPECT_EQ(trail.entries()[0].digest, digest);
  }
  // The nested trail absorbed the recording; the outer one saw nothing.
  EXPECT_TRUE(outer.entries().empty());
}

}  // namespace
}  // namespace monosim
