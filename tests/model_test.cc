// Tests for the §6 performance model.
#include <gtest/gtest.h>

#include "src/model/monotasks_model.h"
#include "src/model/spark_models.h"

namespace monomodel {
namespace {

using monoutil::GiB;
using monoutil::MiB;

HardwareProfile TestHardware() {
  HardwareProfile hw;
  hw.num_machines = 10;
  hw.cores_per_machine = 8;
  hw.disks_per_machine = 2;
  hw.disk_bandwidth = monoutil::MiBps(100);
  hw.nic_bandwidth = monoutil::MiBps(125);
  return hw;
}

StageModelInput CpuBoundStage() {
  StageModelInput stage;
  stage.name = "cpu-bound";
  stage.cpu_seconds = 8000.0;  // 100 s over 80 cores.
  stage.deser_cpu_seconds = 2000.0;
  stage.disk_read_bytes = GiB(100);  // 51.2 s over 2 GB/s of disk.
  stage.input_disk_read_bytes = GiB(100);
  stage.disk_write_bytes = monoutil::Bytes(0);
  stage.network_bytes = GiB(10);
  stage.observed_seconds = 110.0;
  return stage;
}

TEST(HardwareProfileTest, Totals) {
  const HardwareProfile hw = TestHardware();
  EXPECT_EQ(hw.total_cores(), 80);
  EXPECT_EQ(hw.total_disks(), 20);
  EXPECT_NEAR(hw.total_disk_bandwidth().bps(), 20 * 100.0 * 1024 * 1024, 1);
  EXPECT_NEAR(hw.total_nic_bandwidth().bps(), 10 * 125.0 * 1024 * 1024, 1);
}

TEST(HardwareProfileTest, Transformations) {
  const HardwareProfile hw = TestHardware();
  EXPECT_EQ(hw.WithDisksPerMachine(4).total_disks(), 40);
  EXPECT_EQ(hw.WithMachines(20).total_cores(), 160);
  EXPECT_NEAR(hw.WithDiskBandwidth(monoutil::MiBps(450)).disk_bandwidth.bps(),
              monoutil::MiBps(450).bps(), 1);
  // The original is untouched.
  EXPECT_EQ(hw.disks_per_machine, 2);
}

TEST(MonotasksModelTest, IdealTimesMatchHandComputation) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  const StageIdealTimes ideal = model.IdealTimes(0);
  EXPECT_NEAR(ideal.cpu, 100.0, 1e-9);
  EXPECT_NEAR(ideal.disk, static_cast<double>(GiB(100).count()) / (20 * 100.0 * 1024 * 1024),
              1e-9);
  EXPECT_NEAR(ideal.network, static_cast<double>(GiB(10).count()) / (10 * 125.0 * 1024 * 1024),
              1e-9);
  EXPECT_EQ(ideal.bottleneck(), Resource::kCpu);
}

TEST(MonotasksModelTest, BottleneckShiftsWithHardware) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  // With 8x the CPU, disk becomes the bottleneck.
  const auto big_cpu = TestHardware().WithMachines(80);
  // More machines scale every resource; instead shrink disk bandwidth.
  const auto slow_disk = TestHardware().WithDiskBandwidth(monoutil::MiBps(10));
  EXPECT_EQ(model.IdealTimes(0, slow_disk).bottleneck(), Resource::kDisk);
  (void)big_cpu;
}

TEST(MonotasksModelTest, PredictScalesObservedByModeledChange) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  // Same hardware: prediction equals the observed runtime.
  EXPECT_NEAR(model.PredictJobSeconds(TestHardware()), 110.0, 1e-9);
  // Double the cores (via machines) halves the CPU-bound stage, until disk binds:
  // modeled base max(100, 51.2, 8.2) = 100; new max(50, 25.6, 4.1) = 50.
  const double predicted = model.PredictJobSeconds(TestHardware().WithMachines(20));
  EXPECT_NEAR(predicted, 110.0 * 50.0 / 100.0, 1e-6);
}

TEST(MonotasksModelTest, CpuBoundStageUnchangedByMoreDisks) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  EXPECT_NEAR(model.PredictJobSeconds(TestHardware().WithDisksPerMachine(4)), 110.0,
              1e-9);
}

TEST(MonotasksModelTest, InMemoryInputRemovesReadsAndDeser) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  SoftwareChanges software;
  software.input_in_memory_deserialized = true;
  const StageIdealTimes ideal = model.IdealTimes(0, TestHardware(), software);
  EXPECT_NEAR(ideal.cpu, (8000.0 - 2000.0) / 80.0, 1e-9);
  EXPECT_NEAR(ideal.disk, 0.0, 1e-9);  // All reads were input reads.
}

TEST(MonotasksModelTest, InfinitelyFastResource) {
  MonotasksModel model({CpuBoundStage()}, TestHardware());
  // Without CPU, the stage is disk-bound at 51.2 s (modeled), scaled by observed.
  const double no_cpu = model.PredictWithInfinitelyFast(Resource::kCpu);
  const double disk_ideal = static_cast<double>(GiB(100).count()) / (20 * 100.0 * 1024 * 1024);
  EXPECT_NEAR(no_cpu, 110.0 * disk_ideal / 100.0, 1e-6);
  // Disk and network aren't the bottleneck: removing them changes nothing.
  EXPECT_NEAR(model.PredictWithInfinitelyFast(Resource::kDisk), 110.0, 1e-9);
  EXPECT_NEAR(model.PredictWithInfinitelyFast(Resource::kNetwork), 110.0, 1e-9);
}

TEST(MonotasksModelTest, MultiStageJobSumsStages) {
  StageModelInput disk_stage;
  disk_stage.name = "disk-bound";
  disk_stage.cpu_seconds = 80.0;
  disk_stage.disk_read_bytes = GiB(200);
  disk_stage.disk_write_bytes = GiB(200);
  disk_stage.observed_seconds = 230.0;
  MonotasksModel model({CpuBoundStage(), disk_stage}, TestHardware());
  EXPECT_NEAR(model.observed_job_seconds(), 340.0, 1e-9);
  // Each stage has its own bottleneck; doubling disks only helps the second.
  const double predicted = model.PredictJobSeconds(TestHardware().WithDisksPerMachine(4));
  EXPECT_LT(predicted, 340.0);
  EXPECT_GT(predicted, 110.0 + 230.0 / 2.0 - 1.0);
}

TEST(MonotasksModelTest, JobBottleneckAggregatesAcrossStages) {
  StageModelInput disk_stage;
  disk_stage.name = "disk";
  disk_stage.cpu_seconds = 10.0;
  disk_stage.disk_read_bytes = GiB(500);
  disk_stage.observed_seconds = 300.0;
  MonotasksModel model({CpuBoundStage(), disk_stage}, TestHardware());
  EXPECT_EQ(model.JobBottleneck(), Resource::kDisk);
}

TEST(MonotasksModelTest, ZeroWorkStageFallsBackToObserved) {
  StageModelInput idle;
  idle.name = "idle";
  idle.observed_seconds = 5.0;
  MonotasksModel model({idle}, TestHardware());
  EXPECT_NEAR(model.PredictJobSeconds(TestHardware().WithMachines(100)), 5.0, 1e-9);
}

TEST(SlotBasedModelTest, ScalesBySlotRatio) {
  monosim::JobResult result;
  monosim::StageResult stage;
  stage.start = monoutil::Seconds(0.0);
  stage.end = monoutil::Seconds(100.0);
  result.stages.push_back(stage);
  SlotBasedModel model(result, /*baseline_slots_per_machine=*/8);
  EXPECT_NEAR(model.PredictJobSeconds(8), 100.0, 1e-9);
  EXPECT_NEAR(model.PredictJobSeconds(16), 50.0, 1e-9);
  EXPECT_NEAR(model.PredictJobSeconds(4), 200.0, 1e-9);
  EXPECT_NEAR(model.observed_job_seconds(), 100.0, 1e-9);
}

TEST(SparkMeasuredModelTest, BuildsFromMeasuredUsage) {
  monosim::JobResult result;
  monosim::StageResult stage;
  stage.name = "s";
  stage.start = monoutil::Seconds(0.0);
  stage.end = monoutil::Seconds(50.0);
  stage.measured.cpu_seconds = 1000.0;
  stage.measured.disk_read_bytes = GiB(10);
  stage.measured.disk_write_bytes = GiB(2);
  stage.measured.network_bytes = GiB(1);
  result.stages.push_back(stage);
  const MonotasksModel model = ModelFromMeasuredUsage(result, TestHardware());
  const auto& input = model.stage_input(0);
  EXPECT_NEAR(input.cpu_seconds, 1000.0, 1e-9);
  EXPECT_EQ(input.disk_read_bytes, GiB(10));
  // Deserialization is not measurable in Spark.
  EXPECT_NEAR(input.deser_cpu_seconds, 0.0, 1e-12);
  EXPECT_EQ(input.input_disk_read_bytes, monoutil::Bytes(0));
}


TEST(MonotasksModelTest, UncompressedInputTradesCpuForReads) {
  StageModelInput stage = CpuBoundStage();
  stage.decompress_cpu_seconds = 1600.0;
  stage.input_uncompressed_bytes = GiB(250);  // 2.5x compression.
  MonotasksModel model({stage}, TestHardware());
  SoftwareChanges software;
  software.input_stored_uncompressed = true;
  const StageIdealTimes ideal = model.IdealTimes(0, TestHardware(), software);
  EXPECT_NEAR(ideal.cpu, (8000.0 - 1600.0) / 80.0, 1e-9);
  EXPECT_NEAR(ideal.disk,
              static_cast<double>(GiB(250).count()) / (20 * 100.0 * 1024 * 1024), 1e-9);
}

TEST(MonotasksModelTest, InMemoryAlsoRemovesDecompression) {
  StageModelInput stage = CpuBoundStage();
  stage.decompress_cpu_seconds = 1600.0;
  stage.input_uncompressed_bytes = GiB(250);
  MonotasksModel model({stage}, TestHardware());
  SoftwareChanges software;
  software.input_in_memory_deserialized = true;
  const StageIdealTimes ideal = model.IdealTimes(0, TestHardware(), software);
  EXPECT_NEAR(ideal.cpu, (8000.0 - 2000.0 - 1600.0) / 80.0, 1e-9);
  EXPECT_NEAR(ideal.disk, 0.0, 1e-9);
}

TEST(MonotasksModelTest, UncompressedIsNoOpForUncompressedInput) {
  // A stage whose input was never compressed: the what-if must change nothing.
  StageModelInput stage = CpuBoundStage();
  stage.input_uncompressed_bytes = stage.input_disk_read_bytes;
  MonotasksModel model({stage}, TestHardware());
  SoftwareChanges software;
  software.input_stored_uncompressed = true;
  EXPECT_NEAR(model.PredictJobSeconds(TestHardware(), software),
              model.PredictJobSeconds(TestHardware()), 1e-9);
}

}  // namespace
}  // namespace monomodel
