// Process-wide allocation counting for zero-allocation tests.
//
// alloc_hooks.cc replaces the global operator new/delete family with
// malloc-forwarding versions that bump a counter, so any test in the binary
// can assert "this window performed no heap allocations" by snapshotting
// AllocationCount() before and after. Exactly one TU may define the
// replacement operators, which is why they live here and not in the tests
// that use them (tracing_test.cc, pooled_kernel_test.cc).
//
// Sanitizer builds intercept the allocator themselves; the replacements are
// compiled out and MONO_TEST_ALLOC_HOOKS is 0 — guard zero-allocation tests
// with it.
#ifndef MONOTASKS_TESTS_ALLOC_HOOKS_H_
#define MONOTASKS_TESTS_ALLOC_HOOKS_H_

#include <atomic>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MONO_TEST_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MONO_TEST_ALLOC_HOOKS 0
#endif
#endif
#ifndef MONO_TEST_ALLOC_HOOKS
#define MONO_TEST_ALLOC_HOOKS 1
#endif

namespace monotest {

// Global operator new calls since process start (all threads, all TUs).
// Stuck at zero when MONO_TEST_ALLOC_HOOKS is 0.
std::atomic<long>& AllocationCount();

}  // namespace monotest

#endif  // MONOTASKS_TESTS_ALLOC_HOOKS_H_
