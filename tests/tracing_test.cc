// Tests for the event-tracing subsystem: tracer JSON well-formedness, span
// pairing and lane non-overlap, timestamp ordering, span-time conservation
// against the executors' MonotaskTimes accounting, metrics, and the
// tracer-off zero-allocation guarantee.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/model/trace_report.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/simcore/audit.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

// The zero-allocation test counts global operator new calls via the shared
// test-binary-wide hooks (alloc_hooks.cc); sanitizer builds compile them out.
#include "tests/alloc_hooks.h"

namespace {

using monomodel::ParseChromeTrace;
using monomodel::ParsedTrace;
using monomodel::TraceReport;
using monoutil::GiB;

monoload::SortParams DiskBoundSort() {
  monoload::SortParams params;
  params.total_bytes = GiB(8);
  params.values_per_key = 50;  // Disk-bound on 2-HDD workers.
  params.num_map_tasks = 32;
  params.num_reduce_tasks = 32;
  return params;
}

// One traced reference run shared by the structural tests: the disk-bound sort
// under both executors, recorded into a single trace (as MONO_TRACE would).
struct TracedRun {
  monosim::JobResult spark;
  monosim::JobResult mono;
  std::string json;
  std::map<std::string, double> metrics;
};

const TracedRun& GetTracedRun() {
  static const TracedRun* run = [] {
    auto* r = new TracedRun();
    monotrace::MetricsRegistry::Global().ResetForTest();
    monotrace::ScopedTracer scoped;
    const auto cluster = monoload::SmallHddClusterConfig();
    {
      monosim::SimEnvironment env(cluster);
      env.cluster().EnableTrace();
      monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
      env.AttachExecutor(&spark);
      r->spark = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), DiskBoundSort()));
    }
    {
      monosim::SimEnvironment env(cluster);
      env.cluster().EnableTrace();
      monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
      env.AttachExecutor(&mono);
      r->mono = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), DiskBoundSort()));
    }
    r->json = scoped.tracer().ToJson();
    r->metrics = monotrace::MetricsRegistry::Global().Snapshot();
    return r;
  }();
  return *run;
}

const ParsedTrace& GetParsedRun() {
  static const ParsedTrace* trace = new ParsedTrace(ParseChromeTrace(GetTracedRun().json));
  return *trace;
}

TEST(TracerTest, RoundTripsSpansCountersAndInstants) {
  monotrace::Tracer tracer;
  const monotrace::TrackRef track = tracer.Track("proc", "row \"1\"\n");
  tracer.BeginSpan(track, "outer", "job", 1.0);
  tracer.BeginSpan(track, "inner", "stage", 1.5, "mono:map");
  tracer.EndSpan(track, 2.0);
  tracer.EndSpan(track, 3.0);
  tracer.CompleteOnLane("proc", "cpu", "first", "cpu", 0.0, 1.0);
  tracer.CompleteOnLane("proc", "cpu", "second", "cpu", 0.5, 1.5);  // Overlaps.
  tracer.Counter("proc", "queue", 0.25, 3.0);
  tracer.Instant("audit", "fluid", "weighted-share", 0.75, "observed 2 expected 1");

  const ParsedTrace trace = ParseChromeTrace(tracer.ToJson());
  ASSERT_TRUE(trace.ok()) << trace.errors.front();
  EXPECT_TRUE(trace.timestamps_monotonic);
  ASSERT_EQ(trace.spans.size(), 4u);
  ASSERT_EQ(trace.counters.size(), 1u);
  ASSERT_EQ(trace.instants.size(), 1u);

  // The overlapping lane spans land on distinct rows.
  std::string first_track;
  std::string second_track;
  for (const auto& span : trace.spans) {
    if (span.name == "first") first_track = span.track;
    if (span.name == "second") second_track = span.track;
  }
  EXPECT_EQ(first_track, "cpu#0");
  EXPECT_EQ(second_track, "cpu#1");

  // B/E pairs resolve with their names, stages, and the escaped track name.
  bool found_inner = false;
  for (const auto& span : trace.spans) {
    if (span.name == "inner") {
      found_inner = true;
      EXPECT_EQ(span.stage, "mono:map");
      EXPECT_EQ(span.track, "row \"1\"\n");
      EXPECT_DOUBLE_EQ(span.start, 1.5);
      EXPECT_DOUBLE_EQ(span.end, 2.0);
    }
  }
  EXPECT_TRUE(found_inner);
  EXPECT_DOUBLE_EQ(trace.counters[0].value, 3.0);
  EXPECT_EQ(trace.instants[0].process, "audit");
  EXPECT_EQ(trace.instants[0].detail, "observed 2 expected 1");
}

TEST(TracerTest, UnbalancedSpansAreParseErrors) {
  monotrace::Tracer tracer;
  const monotrace::TrackRef track = tracer.Track("proc", "row");
  tracer.BeginSpan(track, "open-forever", "job", 1.0);
  const ParsedTrace trace = ParseChromeTrace(tracer.ToJson());
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.errors.front().find("unclosed"), std::string::npos);
}

TEST(TracedSortTest, TraceIsWellFormedJson) {
  const ParsedTrace& trace = GetParsedRun();
  ASSERT_TRUE(trace.ok()) << trace.errors.front();
  EXPECT_TRUE(trace.timestamps_monotonic);
  EXPECT_GT(trace.spans.size(), 100u);
  EXPECT_GT(trace.counters.size(), 100u);
}

TEST(TracedSortTest, LaneSpansNeverOverlapWithinATrack) {
  const ParsedTrace& trace = GetParsedRun();
  // Lane-allocated rows are named "<base>#<k>"; spans on one row must not
  // overlap (that is the point of the lane allocator).
  std::map<std::pair<std::string, std::string>, std::vector<std::pair<double, double>>>
      by_track;
  for (const auto& span : trace.spans) {
    // Driver tracks hold deliberately-nested job/stage spans; every other
    // '#'-suffixed track is a lane-allocator row.
    if (span.process != "driver" && span.track.find('#') != std::string::npos) {
      by_track[{span.process, span.track}].emplace_back(span.start, span.end);
    }
  }
  EXPECT_GT(by_track.size(), 10u);
  for (auto& [track, intervals] : by_track) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      // Abutting spans may share a lane; JSON stores microseconds to 3 decimal
      // places, so allow the 1 ns of rounding that serialization can introduce.
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 2e-9)
          << "overlap on " << track.first << "/" << track.second;
    }
  }
}

TEST(TracedSortTest, DriverSpansNestStagesInsideJobs) {
  const ParsedTrace& trace = GetParsedRun();
  std::vector<const monomodel::TraceSpan*> jobs;
  std::vector<const monomodel::TraceSpan*> stages;
  for (const auto& span : trace.spans) {
    if (span.process != "driver") {
      continue;
    }
    if (span.category == "job") {
      jobs.push_back(&span);
    } else if (span.category == "stage") {
      stages.push_back(&span);
    }
  }
  ASSERT_EQ(jobs.size(), 2u);    // One job per executor run.
  ASSERT_EQ(stages.size(), 4u);  // Map + reduce, twice.
  for (const auto* stage : stages) {
    bool contained = false;
    for (const auto* job : jobs) {
      contained = contained || (stage->start >= job->start - 1e-9 &&
                                stage->end <= job->end + 1e-9);
    }
    EXPECT_TRUE(contained) << "stage span " << stage->name
                           << " not inside any job span";
  }
}

TEST(TracedSortTest, MonotaskSpanDurationsMatchMonotaskTimes) {
  const ParsedTrace& trace = GetParsedRun();
  const TracedRun& run = GetTracedRun();
  // Per mono stage: span seconds by category must reproduce the executor's
  // MonotaskTimes accounting (same service intervals, independent plumbing).
  for (const auto& stage : run.mono.stages) {
    const std::string label = "mono:" + stage.name;
    double cpu = 0.0;
    double disk = 0.0;
    double network = 0.0;
    for (const auto& span : trace.spans) {
      if (span.stage != label) {
        continue;
      }
      if (span.category == "cpu") {
        cpu += span.end - span.start;
      } else if (span.category == "disk") {
        disk += span.end - span.start;
      } else if (span.category == "network") {
        network += span.end - span.start;
      }
    }
    const auto& times = stage.monotask_times;
    EXPECT_NEAR(cpu, times.compute_seconds, 1e-3) << label;
    EXPECT_NEAR(disk, times.disk_read_seconds + times.disk_write_seconds, 1e-3)
        << label;
    EXPECT_NEAR(network, times.network_seconds, 1e-3) << label;
  }
}

TEST(TracedSortTest, QueueAndDeviceCountersArePresent) {
  const ParsedTrace& trace = GetParsedRun();
  std::set<std::pair<std::string, std::string>> series;
  for (const auto& counter : trace.counters) {
    series.insert({counter.process, counter.series});
  }
  // §3.1 scheduler queues (monotasks executor only).
  EXPECT_TRUE(series.count({"mono:m0", "cpu-queue"}));
  EXPECT_TRUE(series.count({"mono:m0", "disk0-queue"}));
  EXPECT_TRUE(series.count({"mono:m0", "net-queue"}));
  // Device utilization and cache dirty bytes.
  EXPECT_TRUE(series.count({"devices", "machine0.disk0"}));
  EXPECT_TRUE(series.count({"devices", "machine0.cpu"}));
  EXPECT_TRUE(series.count({"devices", "machine0.nic-in"}));
  EXPECT_TRUE(series.count({"os-cache", "machine0.dirty-bytes"}));
  // Both executors report buffered bytes.
  EXPECT_TRUE(series.count({"spark:m0", "buffered-bytes"}));
  EXPECT_TRUE(series.count({"mono:m0", "buffered-bytes"}));
}

TEST(TracedSortTest, ReportBlamesDiskAndAgreesWithModel) {
  const ParsedTrace& trace = GetParsedRun();
  const TracedRun& run = GetTracedRun();
  const TraceReport report = TraceReport::Build(trace);
  ASSERT_EQ(report.stages().size(), 4u);

  const auto* map_stage = report.FindStage("mono:" + run.mono.stages[0].name);
  ASSERT_NE(map_stage, nullptr);
  EXPECT_EQ(map_stage->busiest(), "disk");  // values_per_key=50 => disk-bound.
  EXPECT_FALSE(map_stage->mean_queue.empty());

  const monomodel::MonotasksModel model(
      run.mono, monomodel::HardwareProfile::FromCluster(monoload::SmallHddClusterConfig()));
  int mono_entries = 0;
  for (const auto& entry : report.CrossCheckWithModel(model)) {
    if (entry.stage.rfind("mono:", 0) != 0) {
      continue;
    }
    ++mono_entries;
    EXPECT_TRUE(entry.agree) << entry.stage << ": trace " << entry.trace_verdict
                             << " vs model " << entry.model_verdict;
  }
  EXPECT_EQ(mono_entries, 2);

  // The Spark run's writeback flushes are visible but unattributable (§2.2).
  EXPECT_GT(report.untagged_busy_seconds(), 0.0);
}

TEST(TracedSortTest, MetricsCountCompletedWork) {
  const TracedRun& run = GetTracedRun();
  EXPECT_DOUBLE_EQ(run.metrics.at("spark.tasks_completed"), 64.0);
  EXPECT_DOUBLE_EQ(run.metrics.at("mono.multitasks_completed"), 64.0);
  EXPECT_GT(run.metrics.at("cache.bytes_flushed"), 0.0);
}

TEST(TracedSortTest, UtilizationMeasuredFlagTracksClusterTrace) {
  const TracedRun& run = GetTracedRun();
  EXPECT_TRUE(run.spark.stages[0].utilization.measured);
  EXPECT_TRUE(run.mono.stages[0].utilization.measured);

  // Without EnableTrace the utilization columns are all zero *because nothing
  // measured them* — and the flag now says so.
  monosim::SimEnvironment env(monoload::SmallHddClusterConfig());
  monosim::SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&spark);
  monoload::SortParams params = DiskBoundSort();
  params.total_bytes = GiB(1);
  params.num_map_tasks = 8;
  params.num_reduce_tasks = 8;
  const auto result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
  EXPECT_FALSE(result.stages[0].utilization.measured);
}

TEST(TracingTest, AuditViolationsBecomeInstants) {
  monotrace::ScopedTracer scoped;
  monosim::ScopedAudit audit(monosim::ScopedAudit::kReport);
  audit.audit().Report(monoutil::Seconds(1.5), "fluid:disk0", "weighted-share", "observed 2 expected 1");
  const ParsedTrace trace = ParseChromeTrace(scoped.tracer().ToJson());
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.instants.size(), 1u);
  EXPECT_EQ(trace.instants[0].process, "audit");
  EXPECT_EQ(trace.instants[0].track, "fluid:disk0");
  EXPECT_EQ(trace.instants[0].name, "weighted-share");

  const TraceReport report = TraceReport::Build(trace);
  ASSERT_EQ(report.audit_violations().size(), 1u);
}

#if MONO_TEST_ALLOC_HOOKS
TEST(TracingTest, DisabledTracerHookSitesDoNotAllocate) {
  ASSERT_EQ(monotrace::Tracer::current(), nullptr)
      << "unset MONO_TRACE when running the test suite";
  monosim::SimEnvironment env(monoload::SmallHddClusterConfig());
  monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&mono);

  const long before = monotest::AllocationCount().load();
  for (int i = 0; i < 1000; ++i) {
    // Instrumented hot paths: with no tracer installed each hook is one
    // relaxed atomic load and a branch.
    mono.AddBuffered(0, monoutil::Bytes(64));
    mono.RemoveBuffered(0, monoutil::Bytes(64));
  }
  EXPECT_EQ(monotest::AllocationCount().load() - before, 0);
}
#endif  // MONO_TEST_ALLOC_HOOKS

}  // namespace
