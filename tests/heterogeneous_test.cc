// Tests for heterogeneous clusters (per-machine overrides), per-machine monotask
// attribution, and multi-replica DFS locality.
#include <gtest/gtest.h>

#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/read_compute.h"
#include "src/workloads/sort.h"

namespace monosim {
namespace {

using monoutil::GiB;
using monoutil::MiB;
using monoutil::MiBps;

TEST(HeterogeneousClusterTest, OverridesApplyToTheRightMachine) {
  ClusterConfig config = ClusterConfig::Of(4, MachineConfig::HddWorker(2));
  MachineConfig big = config.machine;
  big.cores = 32;
  config.overrides.emplace_back(2, big);
  SimEnvironment env(config);
  EXPECT_EQ(env.cluster().machine(0).num_cores(), 8);
  EXPECT_EQ(env.cluster().machine(2).num_cores(), 32);
}

TEST(HeterogeneousClusterTest, MachineAtFallsBackToDefault) {
  ClusterConfig config = ClusterConfig::Of(4, MachineConfig::HddWorker(1));
  EXPECT_EQ(config.MachineAt(3).disks.size(), 1u);
  MachineConfig other = MachineConfig::HddWorker(3);
  config.overrides.emplace_back(1, other);
  EXPECT_EQ(config.MachineAt(1).disks.size(), 3u);
  EXPECT_EQ(config.MachineAt(0).disks.size(), 1u);
}

TEST(HeterogeneousClusterTest, DegradedDiskShowsInPerMachineMonotaskRates) {
  ClusterConfig config = ClusterConfig::Of(4, MachineConfig::HddWorker(2));
  MachineConfig sick = config.machine;
  for (auto& disk : sick.disks) {
    disk.bandwidth = MiBps(30);
  }
  config.overrides.emplace_back(1, sick);

  SimEnvironment env(config);
  MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&mono);
  monoload::SortParams params;
  params.total_bytes = GiB(8);
  params.values_per_key = 100;
  params.num_map_tasks = 64;
  params.num_reduce_tasks = 64;
  const JobResult result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));

  const auto& times = result.stages[0].monotask_times;
  ASSERT_EQ(times.disk_seconds_per_machine.size(), 4u);
  auto rate = [&](int machine) {
    return static_cast<double>(
               times.disk_bytes_per_machine[static_cast<size_t>(machine)].count()) /
           times.disk_seconds_per_machine[static_cast<size_t>(machine)];
  };
  // The degraded machine's disk monotasks run at exactly its device rate (one at a
  // time => no contention blurs the measurement), a third of its peers'.
  EXPECT_NEAR(rate(1), MiBps(30).bps(), MiBps(30).bps() * 0.01);
  EXPECT_NEAR(rate(0), MiBps(90).bps(), MiBps(90).bps() * 0.01);
  EXPECT_NEAR(rate(1) / rate(0), 1.0 / 3.0, 0.01);
}

TEST(HeterogeneousClusterTest, DegradedClusterIsSlowerForBothExecutors) {
  auto run = [](bool degrade, bool monotasks) {
    ClusterConfig config = ClusterConfig::Of(4, MachineConfig::HddWorker(2));
    if (degrade) {
      MachineConfig sick = config.machine;
      for (auto& disk : sick.disks) {
        disk.bandwidth = MiBps(20);
      }
      config.overrides.emplace_back(0, sick);
    }
    SimEnvironment env(config);
    SparkExecutorSim spark(&env.sim(), &env.cluster(), &env.pool(), {});
    MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(monotasks ? static_cast<ExecutorSim*>(&mono)
                                 : static_cast<ExecutorSim*>(&spark));
    monoload::SortParams params;
    params.total_bytes = GiB(8);
    params.values_per_key = 100;
    params.num_map_tasks = 64;
    params.num_reduce_tasks = 64;
    return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params)).duration();
  };
  EXPECT_GT(run(true, true), run(false, true));
  EXPECT_GT(run(true, false), run(false, false));
}

TEST(ReplicationLocalityTest, ReplicaHoldersReadLocally) {
  // With replication 2, a task taken by its *second* replica's machine must still
  // be a local read (from that machine's copy), not a remote fetch.
  SimEnvironment env(ClusterConfig::Of(4, MachineConfig::HddWorker(2)),
                     /*dfs_replication=*/2);
  const DfsFile& file = env.dfs().CreateFileWithBlocks("input", MiB(512), 8);

  JobSpec job;
  job.name = "replicated";
  StageSpec stage;
  stage.name = "scan";
  stage.num_tasks = 8;
  stage.input = InputSource::kDfs;
  stage.input_file = "input";
  stage.cpu_seconds_per_task = 0.1;
  job.stages = {stage};
  monoutil::Rng rng(5);
  StageExecution exec(job, 0, 4, &env.dfs(), nullptr, &rng);

  int local_takes = 0;
  for (const auto& block : file.blocks) {
    ASSERT_EQ(block.replicas.size(), 2u);
  }
  // Take every task from the machine of its SECOND replica.
  for (size_t b = 0; b < file.blocks.size(); ++b) {
    const int second_holder = file.blocks[b].replicas[1].machine;
    auto task = exec.TakeTask(second_holder);
    ASSERT_TRUE(task.has_value());
    if (task->input_local) {
      ++local_takes;
      EXPECT_EQ(task->input_machine, task->machine);
    }
  }
  // Every take was satisfied by a local replica (each machine holds replicas of the
  // blocks it was asked for, possibly a different block than the loop intended, but
  // always one of its own).
  EXPECT_EQ(local_takes, 8);
}

TEST(ReplicationLocalityTest, NonHolderReadsRemotelyFromPrimary) {
  SimEnvironment env(ClusterConfig::Of(8, MachineConfig::HddWorker(1)),
                     /*dfs_replication=*/1);
  const DfsFile& file = env.dfs().CreateFileWithBlocks("input", MiB(128), 1);
  const int home = file.blocks[0].replicas[0].machine;
  JobSpec job;
  job.name = "remote";
  StageSpec stage;
  stage.name = "scan";
  stage.num_tasks = 1;
  stage.input = InputSource::kDfs;
  stage.input_file = "input";
  stage.cpu_seconds_per_task = 0.1;
  job.stages = {stage};
  monoutil::Rng rng(5);
  StageExecution exec(job, 0, 8, &env.dfs(), nullptr, &rng);
  const int thief = (home + 1) % 8;
  auto task = exec.TakeTask(thief);
  ASSERT_TRUE(task.has_value());
  EXPECT_FALSE(task->input_local);
  EXPECT_EQ(task->input_machine, home);
  EXPECT_EQ(task->input_disk, file.blocks[0].replicas[0].disk);
}

TEST(ReplicationLocalityTest, ReplicatedJobRunsWithLessRemoteTraffic) {
  auto network_bytes = [](int replication) {
    SimEnvironment env(ClusterConfig::Of(4, MachineConfig::HddWorker(2)), replication);
    MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(&mono);
    monoload::ReadComputeParams params;
    params.total_bytes = GiB(4);
    params.num_tasks = 32;
    // Cheap compute so machines finish unevenly and stealing happens.
    params.cpu_ns_per_byte = 5.0;
    const JobResult result =
        env.driver().RunJob(monoload::MakeReadComputeJob(&env.dfs(), params));
    return result.stages[0].usage.network_bytes;
  };
  // More replicas -> more machines can run any given task locally -> no more remote
  // traffic than the unreplicated layout.
  EXPECT_LE(network_bytes(3), network_bytes(1));
}


TEST(QueueVisibilityTest, ContentionShowsAsQueueLength) {
  // A disk-bound job: the disk schedulers' queues grow while the CPU queue stays
  // short — §3.1's "contention visible as queue length", measurable directly.
  SimEnvironment env(ClusterConfig::Of(2, MachineConfig::HddWorker(1)));
  MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
  mono.EnableQueueTraces();
  env.AttachExecutor(&mono);
  monoload::SortParams params;
  params.total_bytes = GiB(8);
  params.values_per_key = 200;  // Disk-heavy.
  params.num_map_tasks = 64;
  params.num_reduce_tasks = 64;
  const JobResult result = env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));

  const auto& disk_queue = mono.disk_scheduler(0, 0).queue_trace();
  const auto& cpu_queue = mono.cpu_scheduler(0).queue_trace();
  const double window = result.duration().seconds();
  const double mean_disk_queue = disk_queue.Integrate(monoutil::SimTime(), monoutil::Seconds(window)) / window;
  const double mean_cpu_queue = cpu_queue.Integrate(monoutil::SimTime(), monoutil::Seconds(window)) / window;
  EXPECT_GT(mean_disk_queue, 1.0);             // The bottleneck has a real queue...
  EXPECT_LT(mean_cpu_queue, mean_disk_queue);  // ...and the CPU does not.
}

}  // namespace
}  // namespace monosim
