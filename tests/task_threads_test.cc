// Tests for the engine's baseline (task-threads) execution mode: results must be
// identical to monotasks mode, and the architectural differences must be observable.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include <gtest/gtest.h>

#include "src/api/dataset.h"
#include "src/api/engine_model.h"

namespace monotasks {
namespace {

EngineConfig ConfigFor(ExecutionMode mode) {
  EngineConfig config;
  config.num_workers = 2;
  config.cores_per_worker = 2;
  config.disks_per_worker = 1;
  config.mode = mode;
  config.time_scale = 2000.0;
  return config;
}

using Record = std::pair<int64_t, int64_t>;

std::vector<Record> RunReduceJob(ExecutionMode mode) {
  MonoClient client(ConfigFor(mode));
  std::vector<Record> input;
  for (int64_t i = 0; i < 300; ++i) {
    input.emplace_back(i % 15, 1);
  }
  auto reduced = ReduceByKey<int64_t, int64_t>(
      client.Parallelize<Record>(input, 6),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  auto out = reduced.Collect();
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TaskThreadsModeTest, ProducesIdenticalResultsToMonotasks) {
  EXPECT_EQ(RunReduceJob(ExecutionMode::kTaskThreads),
            RunReduceJob(ExecutionMode::kMonotasks));
}

TEST(TaskThreadsModeTest, WordCountWorks) {
  MonoClient client(ConfigFor(ExecutionMode::kTaskThreads));
  using WordCount = std::pair<std::string, int64_t>;
  std::vector<WordCount> words;
  for (int i = 0; i < 120; ++i) {
    words.emplace_back("w" + std::to_string(i % 4), 1);
  }
  auto reduced = ReduceByKey<std::string, int64_t>(
      client.Parallelize<WordCount>(words, 5),
      [](const int64_t& a, const int64_t& b) { return a + b; }, 3);
  std::map<std::string, int64_t> counts;
  for (auto& [word, count] : reduced.Collect()) {
    counts[word] = count;
  }
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts["w0"], 30);
}

TEST(TaskThreadsModeTest, SaveAndReloadWorks) {
  MonoClient client(ConfigFor(ExecutionMode::kTaskThreads));
  client.Parallelize<int64_t>({1, 2, 3, 4}, 2)
      .Map<int64_t>([](const int64_t& x) { return x * 10; })
      .Save("scaled");
  auto out = client.FromSource<int64_t>("scaled", 2).Collect();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int64_t>{10, 20, 30, 40}));
}

TEST(TaskThreadsModeTest, MonotaskCountersStayQuietInBaselineMode) {
  // In task-thread mode, everything runs inside "CPU" slots: the disk and network
  // schedulers never see a monotask — the architectural difference in one assert.
  MonoClient client(ConfigFor(ExecutionMode::kTaskThreads));
  client.Parallelize<int64_t>({1, 2, 3, 4, 5, 6}, 3)
      .Map<int64_t>([](const int64_t& x) { return x + 1; })
      .Save("out");
  int disk_monotasks = 0;
  for (int w = 0; w < client.context().num_workers(); ++w) {
    disk_monotasks += client.context().worker(w).counters().disk_count.load();
  }
  EXPECT_EQ(disk_monotasks, 0);

  MonoClient mono_client(ConfigFor(ExecutionMode::kMonotasks));
  mono_client.Parallelize<int64_t>({1, 2, 3, 4, 5, 6}, 3)
      .Map<int64_t>([](const int64_t& x) { return x + 1; })
      .Save("out");
  int mono_disk_monotasks = 0;
  for (int w = 0; w < mono_client.context().num_workers(); ++w) {
    mono_disk_monotasks += mono_client.context().worker(w).counters().disk_count.load();
  }
  EXPECT_GT(mono_disk_monotasks, 0);
}

TEST(BlockDeviceContentionTest, OverlappingOpsPayTheSeekPenalty) {
  // With alpha = 1, an operation that overlaps one other is charged 2x its bytes.
  // The overlap is forced (the second reader waits until the first is in service),
  // and the assertion is on the deterministic charged-bytes accounting, not on
  // wall-clock timing.
  SimulatedBlockDevice device("d", monoutil::MiBps(100), /*time_scale=*/10.0,
                              /*seek_alpha=*/1.0);
  device.Write("big", Buffer(8 << 20, 1));   // 8 MiB: a long-running read.
  device.Write("small", Buffer(1 << 20, 2));
  const monoutil::Bytes charged_after_writes = device.charged_bytes();

  std::thread first([&] { device.Read("big"); });
  while (device.active_ops() == 0) {
    std::this_thread::yield();
  }
  device.Read("small");  // Overlaps `big`: charged 2 MiB instead of 1.
  first.join();

  const monoutil::Bytes charged =
      device.charged_bytes() - charged_after_writes;
  // big (started alone: 8 MiB) + small (overlapped: 2 MiB) = 10 MiB.
  EXPECT_EQ(charged, monoutil::Bytes((8 << 20) + (2 << 20)));
  // Serialized operations are never surcharged.
  const monoutil::Bytes before = device.charged_bytes();
  device.Read("small");
  EXPECT_EQ(device.charged_bytes() - before, monoutil::Bytes(1 << 20));
}


TEST(EngineModelTest, ConvertsMetricsToModelInputs) {
  EngineJobMetrics metrics;
  EngineStageMetrics stage;
  stage.name = "s0";
  stage.wall_seconds = 1.5;
  stage.compute_seconds = 4.0;
  stage.disk_read_bytes = monoutil::Bytes(1 << 20);
  stage.disk_write_bytes = monoutil::Bytes(1 << 19);
  stage.network_bytes = monoutil::Bytes(1 << 18);
  metrics.stages.push_back(stage);
  const auto inputs = ToModelInputs(metrics);
  ASSERT_EQ(inputs.size(), 1u);
  EXPECT_EQ(inputs[0].name, "s0");
  EXPECT_NEAR(inputs[0].cpu_seconds, 4.0, 1e-12);
  EXPECT_EQ(inputs[0].disk_read_bytes, monoutil::Bytes(1 << 20));
  EXPECT_NEAR(inputs[0].observed_seconds, 1.5, 1e-12);
}

TEST(EngineModelTest, ModelIdentifiesEngineDiskBottleneck) {
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "wall-clock bottleneck thresholds are skewed by sanitizer overhead";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  GTEST_SKIP() << "wall-clock bottleneck thresholds are skewed by sanitizer overhead";
#endif
#endif
  // A disk-heavy job on the engine; the model built from its metrics must agree
  // that disk dominates and predict improvement from a second disk.
  EngineConfig config;
  config.num_workers = 2;
  config.cores_per_worker = 2;
  config.disks_per_worker = 1;
  config.disk_bandwidth = monoutil::MiBps(8);  // Slow disks so I/O dominates compute.
  config.time_scale = 50.0;
  MonoClient client(config);
  std::vector<int64_t> input(1 << 20);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int64_t>(i);
  }
  // Save forces a full write pass; reading it back forces a full read pass.
  client.Parallelize<int64_t>(input, 8)
      .Map<int64_t>([](const int64_t& x) { return x; })
      .Save("bulk");
  const auto model = BuildEngineModel(client.last_job_metrics(), config);
  EXPECT_EQ(model.JobBottleneck(), monomodel::Resource::kDisk);
  const double with_more_disks =
      model.PredictJobSeconds(model.baseline().WithDisksPerMachine(4));
  EXPECT_LT(with_more_disks, model.observed_job_seconds() * 0.7);
}

}  // namespace
}  // namespace monotasks
