#!/usr/bin/env python3
"""Unit tests for mono_lint: each rule class must fire on its fixture and stay
quiet on clean/suppressed code. Run by CTest as `mono_lint_unit`."""

from __future__ import annotations

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import mono_lint  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"


def rules_found(name: str, rules=mono_lint.ALL_RULES) -> list[str]:
    return [v.rule for v in mono_lint.lint_file(FIXTURES / name, rules)]


def cross_tu_found(name: str, rules) -> list[mono_lint.Violation]:
    """Lints one fixture with an index built from that fixture alone."""
    path = FIXTURES / name
    index = mono_lint.build_index([path])
    return mono_lint.lint_file(path, rules, index=index)


class WallClockRuleTest(unittest.TestCase):
    def test_flags_every_wall_clock_source(self) -> None:
        found = rules_found("bad_wall_clock.cc")
        self.assertEqual(set(found), {"wall-clock"})
        # steady_clock, system_clock, time(), high_resolution_clock.
        self.assertEqual(len(found), 4)


class EntropyRuleTest(unittest.TestCase):
    def test_flags_every_entropy_source(self) -> None:
        found = rules_found("bad_entropy.cc")
        self.assertEqual(set(found), {"entropy"})
        # random_device, mt19937_64, distribution, srand, rand.
        self.assertEqual(len(found), 5)

    def test_rand_only_flagged_as_a_call(self) -> None:
        violations = mono_lint.lint_file(FIXTURES / "bad_entropy.cc", ["entropy"])
        self.assertTrue(any("rand" in v.line for v in violations))


class PtrKeyedContainerRuleTest(unittest.TestCase):
    def test_flags_pointer_keyed_unordered_containers(self) -> None:
        found = rules_found("bad_ptr_map.cc")
        self.assertEqual(set(found), {"ptr-keyed-container"})
        self.assertEqual(len(found), 2)  # One map, one set.


class AddressOrderedRuleTest(unittest.TestCase):
    def test_flags_address_ordered_containers_and_comparators(self) -> None:
        found = rules_found("bad_address_ordered.cc")
        self.assertEqual(set(found), {"address-ordered"})
        self.assertEqual(len(found), 3)  # set, map, std::less comparator.


class StdFunctionHotPathRuleTest(unittest.TestCase):
    def test_flags_std_function_in_kernel_code(self) -> None:
        found = rules_found("bad_std_function.cc")
        self.assertEqual(set(found), {"std-function-hot-path"})
        # Member declaration + schedule-path signature; the allow-tagged
        # config-time alias and the comment/string mentions stay quiet.
        self.assertEqual(len(found), 2)

    def test_rule_is_scoped_to_the_event_kernel(self) -> None:
        # Only src/simcore is linted with the rule: the layers above wrap
        # their callbacks before they reach the kernel, and config-time
        # std::function there is legitimate.
        hot = [d for d, rules in mono_lint.DIR_RULES.items()
               if "std-function-hot-path" in rules]
        self.assertEqual(hot, ["src/simcore"])
        self.assertIn("std-function-hot-path", mono_lint.ALL_RULES)


class RawUnitDoubleRuleTest(unittest.TestCase):
    def test_flags_unit_named_raw_declarations(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_raw_unit_double.h", ["raw-unit-double"])
        self.assertEqual({v.rule for v in violations}, {"raw-unit-double"})
        # latency member, total_bytes member, bandwidth parameter, duration
        # parameter (on a continuation line — token-aware, not line-regex),
        # and the bandwidth() accessor.
        self.assertEqual(len(violations), 5)
        flagged = {v.line.split(";")[0].strip() for v in violations}
        self.assertIn("double latency", flagged)
        self.assertIn("int64_t total_bytes = 0", flagged)

    def test_exempt_names_and_tags_stay_quiet(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_raw_unit_double.h", ["raw-unit-double"])
        quiet = ("cpu_seconds", "load_fraction", "time_scale", "rate = 0.0",
                 "seconds()", "count_")
        for v in violations:
            for name in quiet:
                self.assertNotIn(name, v.line)

    def test_rule_is_scoped_to_headers(self) -> None:
        # The API boundary is headers; .cc locals routinely unwrap via
        # .bps()/.seconds()/.count() and are not flagged.
        fixture = FIXTURES / "bad_raw_unit_double.h"
        renamed = fixture.read_text()
        cc_twin = FIXTURES / "bad_raw_unit_double_twin.cc"
        try:
            cc_twin.write_text(renamed)
            self.assertEqual(
                mono_lint.lint_file(cc_twin, ["raw-unit-double"]), [])
        finally:
            cc_twin.unlink()


class IncludeLayeringRuleTest(unittest.TestCase):
    def test_flags_edges_outside_the_layer_dag(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_include_layering.cc", ["include-layering"],
            layer="src/simcore")
        self.assertEqual({v.rule for v in violations}, {"include-layering"})
        # engine, api, and cluster are all unreachable from simcore.
        self.assertEqual(len(violations), 3)
        flagged = "".join(v.line for v in violations)
        self.assertIn("src/engine/worker.h", flagged)
        self.assertIn("src/api/context.h", flagged)
        self.assertIn("src/cluster/network.h", flagged)

    def test_no_sim_layer_may_reach_engine_or_api(self) -> None:
        for layer, deps in mono_lint.LAYER_DEPS.items():
            if layer in ("src/engine", "src/api"):
                continue
            self.assertNotIn("src/engine", deps, layer)
            self.assertNotIn("src/api", deps, layer)

    def test_declared_dag_is_acyclic(self) -> None:
        seen: dict[str, int] = {}  # 0 = visiting, 1 = done.

        def visit(layer: str) -> None:
            state = seen.get(layer)
            self.assertNotEqual(state, 0, f"cycle through {layer}")
            if state == 1:
                return
            seen[layer] = 0
            for dep in mono_lint.LAYER_DEPS[layer]:
                visit(dep)
            seen[layer] = 1

        for layer in mono_lint.LAYER_DEPS:
            visit(layer)

    def test_files_outside_src_have_no_layer(self) -> None:
        self.assertIsNone(mono_lint.layer_of(FIXTURES / "good_clean.cc"))
        self.assertEqual(
            mono_lint.layer_of(pathlib.Path("src/simcore/simulation.h")),
            "src/simcore")


class CleanCodeTest(unittest.TestCase):
    def test_clean_fixture_has_no_violations(self) -> None:
        self.assertEqual(rules_found("good_clean.cc"), [])

    def test_suppression_is_rule_specific(self) -> None:
        # `iteration-free` must not silence other rules on the same line.
        path = FIXTURES / "bad_ptr_map.cc"
        violations = mono_lint.lint_file(path, ["wall-clock"])
        self.assertEqual(violations, [])


class RuleSubsetTest(unittest.TestCase):
    def test_bench_rule_subset_ignores_wall_clock(self) -> None:
        # bench/ sources are linted with the entropy rule only; a bench-style
        # wall-clock fixture must pass under that subset.
        found = rules_found("bad_wall_clock.cc", mono_lint.BENCH_RULES)
        self.assertEqual(found, [])

    def test_every_layer_has_an_explicit_rule_set(self) -> None:
        # DIR_RULES and the layer DAG must cover exactly the same directories:
        # the unmapped-dir tree check relies on this being exhaustive.
        self.assertEqual(sorted(mono_lint.DIR_RULES), sorted(mono_lint.LAYER_DEPS))

    def test_determinism_rules_stay_out_of_the_wall_clock_world(self) -> None:
        # src/engine and src/api run on real threads and the real clock; only
        # the layer boundary and the lambda/lock discipline apply there.
        for directory in ("src/common", "src/engine", "src/api"):
            rules = set(mono_lint.DIR_RULES[directory])
            self.assertNotIn("wall-clock", rules, directory)
            self.assertNotIn("entropy", rules, directory)
            self.assertIn("include-layering", rules, directory)
        self.assertIn("lock-across-schedule", mono_lint.DIR_RULES["src/engine"])
        self.assertIn("escaping-capture", mono_lint.DIR_RULES["src/engine"])
        self.assertIn("escaping-capture", mono_lint.DIR_RULES["src/api"])

    def test_cross_tu_rules_are_active_in_sim_dirs(self) -> None:
        for directory in ("src/simcore", "src/cluster", "src/monotask",
                          "src/multitask", "src/framework", "src/storage"):
            rules = set(mono_lint.DIR_RULES[directory])
            self.assertIn("escaping-capture", rules, directory)
            self.assertIn("domain-ownership", rules, directory)
            self.assertIn("raw-unit-double", rules, directory)
            self.assertIn("include-layering", rules, directory)


class EscapingCaptureRuleTest(unittest.TestCase):
    def test_firing_fixture_flags_every_escape_form(self) -> None:
        violations = cross_tu_found("bad_escaping_capture.cc",
                                    ["escaping-capture"])
        self.assertEqual({v.rule for v in violations}, {"escaping-capture"})
        # &local, [&] default, `this` in a non-sim-owned class, init-capture
        # taking an address.
        self.assertEqual(len(violations), 4)
        joined = " ".join(v.message for v in violations)
        self.assertIn("`&local_total`", joined)
        self.assertIn("[&] default capture", joined)
        self.assertIn("`this` captured", joined)
        self.assertIn("init-capture `total`", joined)

    def test_clean_twin_is_quiet(self) -> None:
        self.assertEqual(
            cross_tu_found("good_escaping_capture.cc", ["escaping-capture"]),
            [])


class DomainOwnershipRuleTest(unittest.TestCase):
    def test_firing_fixture_flags_unsanctioned_mutations(self) -> None:
        violations = cross_tu_found("bad_domain_ownership.cc",
                                    ["domain-ownership"])
        self.assertEqual({v.rule for v in violations}, {"domain-ownership"})
        # The Poke() call and the flows_ assignment; the ctor call, const
        # query, and sanctioned StartFlow stay quiet.
        self.assertEqual(len(violations), 2)
        joined = " ".join(v.message for v in violations)
        self.assertIn("calls NetworkFabricSim::Poke", joined)
        self.assertIn("assigns to NetworkFabricSim::flows_", joined)

    def test_clean_twin_is_quiet(self) -> None:
        self.assertEqual(
            cross_tu_found("good_domain_ownership.cc", ["domain-ownership"]),
            [])


class LockAcrossScheduleRuleTest(unittest.TestCase):
    def test_firing_fixture_flags_calls_under_the_lock(self) -> None:
        violations = cross_tu_found("bad_lock_across_schedule.cc",
                                    ["lock-across-schedule"])
        self.assertEqual({v.rule for v in violations},
                         {"lock-across-schedule"})
        # Scheduler Submit, the submit_ routing functor, and bare
        # ScheduleAfter, all inside the MutexLock scope.
        self.assertEqual(len(violations), 3)

    def test_clean_twin_submits_after_release(self) -> None:
        self.assertEqual(
            cross_tu_found("good_lock_across_schedule.cc",
                           ["lock-across-schedule"]),
            [])


class ProjectIndexTest(unittest.TestCase):
    def test_domains_members_accessors_and_const_methods(self) -> None:
        index = mono_lint.build_index([FIXTURES / "bad_domain_ownership.cc"])
        fabric = index.classes["NetworkFabricSim"]
        driver = index.classes["DriverSim"]
        self.assertEqual(fabric.domain, "fabric")
        self.assertEqual(driver.domain, "driver")
        self.assertFalse(driver.sim_owned)
        self.assertEqual(driver.members.get("fabric_"), "NetworkFabricSim")
        self.assertEqual(driver.accessors.get("fabric"), "NetworkFabricSim")
        self.assertIn("flows", fabric.const_methods)

    def test_sim_owned_flag_is_indexed(self) -> None:
        index = mono_lint.build_index([FIXTURES / "good_escaping_capture.cc"])
        self.assertTrue(index.classes["OwnedTaskSim"].sim_owned)
        self.assertFalse(index.classes["DiskSchedulerSim"].sim_owned)


class SuppressionHygieneTest(unittest.TestCase):
    def test_tag_without_a_reason_is_flagged(self) -> None:
        scratch = FIXTURES / "scratch_bare_tag.cc"
        try:
            scratch.write_text("// mono_lint: allow(entropy)\nint x = 0;\n")
            found = [v.rule for v in mono_lint.lint_file(scratch, ["entropy"])]
            self.assertEqual(found, ["suppression-hygiene"])
        finally:
            scratch.unlink()

    def test_unknown_rule_in_tag_is_flagged(self) -> None:
        scratch = FIXTURES / "scratch_unknown_tag.cc"
        try:
            scratch.write_text(
                "// mono_lint: allow(no-such-rule) -- reasoned.\nint x = 0;\n")
            found = [v.rule for v in mono_lint.lint_file(scratch, ["entropy"])]
            self.assertEqual(found, ["suppression-hygiene"])
        finally:
            scratch.unlink()

    def test_unused_tag_is_reported_as_stale(self) -> None:
        scratch = FIXTURES / "scratch_stale_tag.cc"
        try:
            scratch.write_text(
                "// mono_lint: allow(entropy) -- nothing below uses entropy.\n"
                "int x = 0;\n")
            result = mono_lint._lint_file_ex(scratch, ["entropy"])
            self.assertEqual(result.violations, [])
            stale = result.smap.unused_violations(scratch)
            self.assertEqual([v.rule for v in stale], ["suppression-hygiene"])
            self.assertIn("unused suppression", stale[0].message)
        finally:
            scratch.unlink()

    def test_used_tag_with_reason_is_quiet(self) -> None:
        scratch = FIXTURES / "scratch_used_tag.cc"
        try:
            scratch.write_text(
                "// mono_lint: allow(entropy) -- fixture exercises the tag.\n"
                "int x = rand();\n")
            result = mono_lint._lint_file_ex(scratch, ["entropy"])
            self.assertEqual(result.violations, [])
            self.assertEqual(result.smap.unused_violations(scratch), [])
        finally:
            scratch.unlink()


class UnmappedDirTest(unittest.TestCase):
    def test_new_src_directory_fails_the_tree(self) -> None:
        import shutil
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "newdir").mkdir(parents=True)
            (root / "src" / "newdir" / "thing.h").write_text("int x = 0;\n")
            violations = mono_lint.lint_tree(root)
            unmapped = [v for v in violations if v.rule == "unmapped-dir"]
            self.assertEqual(len(unmapped), 1)
            self.assertIn("src/newdir", unmapped[0].message)
            shutil.rmtree(root / "src")


class CommentAndStringStrippingTest(unittest.TestCase):
    def test_matches_in_comments_and_strings_are_ignored(self) -> None:
        code, in_block = mono_lint.strip_code_line(
            'Log("rand() seeded");  // via std::random_device', False
        )
        self.assertFalse(in_block)
        self.assertNotIn("rand", code)
        self.assertNotIn("random_device", code)

    def test_block_comment_state_carries_across_lines(self) -> None:
        _, in_block = mono_lint.strip_code_line("/* begin rand(", False)
        self.assertTrue(in_block)
        code, in_block = mono_lint.strip_code_line("still rand() */ x = 1;", True)
        self.assertFalse(in_block)
        self.assertNotIn("rand", code)
        self.assertIn("x = 1;", code)


class TreeIsCleanTest(unittest.TestCase):
    def test_repository_tree_passes(self) -> None:
        root = pathlib.Path(__file__).resolve().parent.parent
        violations = mono_lint.lint_tree(root)
        self.assertEqual(
            [f"{v.path}:{v.line_number} [{v.rule}]" for v in violations], []
        )


if __name__ == "__main__":
    unittest.main()
