#!/usr/bin/env python3
"""Unit tests for mono_lint: each rule class must fire on its fixture and stay
quiet on clean/suppressed code. Run by CTest as `mono_lint_unit`."""

from __future__ import annotations

import pathlib
import sys
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import mono_lint  # noqa: E402

FIXTURES = pathlib.Path(__file__).resolve().parent / "lint_fixtures"


def rules_found(name: str, rules=mono_lint.ALL_RULES) -> list[str]:
    return [v.rule for v in mono_lint.lint_file(FIXTURES / name, rules)]


class WallClockRuleTest(unittest.TestCase):
    def test_flags_every_wall_clock_source(self) -> None:
        found = rules_found("bad_wall_clock.cc")
        self.assertEqual(set(found), {"wall-clock"})
        # steady_clock, system_clock, time(), high_resolution_clock.
        self.assertEqual(len(found), 4)


class EntropyRuleTest(unittest.TestCase):
    def test_flags_every_entropy_source(self) -> None:
        found = rules_found("bad_entropy.cc")
        self.assertEqual(set(found), {"entropy"})
        # random_device, mt19937_64, distribution, srand, rand.
        self.assertEqual(len(found), 5)

    def test_rand_only_flagged_as_a_call(self) -> None:
        violations = mono_lint.lint_file(FIXTURES / "bad_entropy.cc", ["entropy"])
        self.assertTrue(any("rand" in v.line for v in violations))


class PtrKeyedContainerRuleTest(unittest.TestCase):
    def test_flags_pointer_keyed_unordered_containers(self) -> None:
        found = rules_found("bad_ptr_map.cc")
        self.assertEqual(set(found), {"ptr-keyed-container"})
        self.assertEqual(len(found), 2)  # One map, one set.


class AddressOrderedRuleTest(unittest.TestCase):
    def test_flags_address_ordered_containers_and_comparators(self) -> None:
        found = rules_found("bad_address_ordered.cc")
        self.assertEqual(set(found), {"address-ordered"})
        self.assertEqual(len(found), 3)  # set, map, std::less comparator.


class StdFunctionHotPathRuleTest(unittest.TestCase):
    def test_flags_std_function_in_kernel_code(self) -> None:
        found = rules_found("bad_std_function.cc")
        self.assertEqual(set(found), {"std-function-hot-path"})
        # Member declaration + schedule-path signature; the allow-tagged
        # config-time alias and the comment/string mentions stay quiet.
        self.assertEqual(len(found), 2)

    def test_rule_is_scoped_to_the_event_kernel(self) -> None:
        # Only src/simcore is linted with the rule: the layers above wrap
        # their callbacks before they reach the kernel, and config-time
        # std::function there is legitimate.
        self.assertEqual(mono_lint.HOT_PATH_DIRS, ("src/simcore",))
        self.assertNotIn("std-function-hot-path", mono_lint.SIM_RULES)
        self.assertIn("std-function-hot-path", mono_lint.ALL_RULES)


class RawUnitDoubleRuleTest(unittest.TestCase):
    def test_flags_unit_named_raw_declarations(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_raw_unit_double.h", ["raw-unit-double"])
        self.assertEqual({v.rule for v in violations}, {"raw-unit-double"})
        # latency member, total_bytes member, bandwidth parameter, duration
        # parameter (on a continuation line — token-aware, not line-regex),
        # and the bandwidth() accessor.
        self.assertEqual(len(violations), 5)
        flagged = {v.line.split(";")[0].strip() for v in violations}
        self.assertIn("double latency", flagged)
        self.assertIn("int64_t total_bytes = 0", flagged)

    def test_exempt_names_and_tags_stay_quiet(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_raw_unit_double.h", ["raw-unit-double"])
        quiet = ("cpu_seconds", "load_fraction", "time_scale", "rate = 0.0",
                 "seconds()", "count_")
        for v in violations:
            for name in quiet:
                self.assertNotIn(name, v.line)

    def test_rule_is_scoped_to_headers(self) -> None:
        # The API boundary is headers; .cc locals routinely unwrap via
        # .bps()/.seconds()/.count() and are not flagged.
        fixture = FIXTURES / "bad_raw_unit_double.h"
        renamed = fixture.read_text()
        cc_twin = FIXTURES / "bad_raw_unit_double_twin.cc"
        try:
            cc_twin.write_text(renamed)
            self.assertEqual(
                mono_lint.lint_file(cc_twin, ["raw-unit-double"]), [])
        finally:
            cc_twin.unlink()


class IncludeLayeringRuleTest(unittest.TestCase):
    def test_flags_edges_outside_the_layer_dag(self) -> None:
        violations = mono_lint.lint_file(
            FIXTURES / "bad_include_layering.cc", ["include-layering"],
            layer="src/simcore")
        self.assertEqual({v.rule for v in violations}, {"include-layering"})
        # engine, api, and cluster are all unreachable from simcore.
        self.assertEqual(len(violations), 3)
        flagged = "".join(v.line for v in violations)
        self.assertIn("src/engine/worker.h", flagged)
        self.assertIn("src/api/context.h", flagged)
        self.assertIn("src/cluster/network.h", flagged)

    def test_no_sim_layer_may_reach_engine_or_api(self) -> None:
        for layer, deps in mono_lint.LAYER_DEPS.items():
            if layer in ("src/engine", "src/api"):
                continue
            self.assertNotIn("src/engine", deps, layer)
            self.assertNotIn("src/api", deps, layer)

    def test_declared_dag_is_acyclic(self) -> None:
        seen: dict[str, int] = {}  # 0 = visiting, 1 = done.

        def visit(layer: str) -> None:
            state = seen.get(layer)
            self.assertNotEqual(state, 0, f"cycle through {layer}")
            if state == 1:
                return
            seen[layer] = 0
            for dep in mono_lint.LAYER_DEPS[layer]:
                visit(dep)
            seen[layer] = 1

        for layer in mono_lint.LAYER_DEPS:
            visit(layer)

    def test_files_outside_src_have_no_layer(self) -> None:
        self.assertIsNone(mono_lint.layer_of(FIXTURES / "good_clean.cc"))
        self.assertEqual(
            mono_lint.layer_of(pathlib.Path("src/simcore/simulation.h")),
            "src/simcore")


class CleanCodeTest(unittest.TestCase):
    def test_clean_fixture_has_no_violations(self) -> None:
        self.assertEqual(rules_found("good_clean.cc"), [])

    def test_suppression_is_rule_specific(self) -> None:
        # `iteration-free` must not silence other rules on the same line.
        path = FIXTURES / "bad_ptr_map.cc"
        violations = mono_lint.lint_file(path, ["wall-clock"])
        self.assertEqual(violations, [])


class RuleSubsetTest(unittest.TestCase):
    def test_bench_rule_subset_ignores_wall_clock(self) -> None:
        # bench/ sources are linted with the entropy rule only; a bench-style
        # wall-clock fixture must pass under that subset.
        found = rules_found("bad_wall_clock.cc", mono_lint.BENCH_RULES)
        self.assertEqual(found, [])

    def test_tree_scope_excludes_engine_and_api(self) -> None:
        for directory in mono_lint.SIM_DIRS:
            self.assertNotIn("engine", directory)
            self.assertNotIn("api", directory)

    def test_new_rules_are_active_in_sim_dirs(self) -> None:
        self.assertIn("raw-unit-double", mono_lint.SIM_RULES)
        self.assertIn("include-layering", mono_lint.SIM_RULES)
        self.assertIn("raw-unit-double", mono_lint.ALL_RULES)
        self.assertIn("include-layering", mono_lint.ALL_RULES)

    def test_engine_and_api_are_layer_checked_only(self) -> None:
        self.assertEqual(mono_lint.LAYER_ONLY_DIRS,
                         ("src/common", "src/engine", "src/api"))


class CommentAndStringStrippingTest(unittest.TestCase):
    def test_matches_in_comments_and_strings_are_ignored(self) -> None:
        code, in_block = mono_lint.strip_code_line(
            'Log("rand() seeded");  // via std::random_device', False
        )
        self.assertFalse(in_block)
        self.assertNotIn("rand", code)
        self.assertNotIn("random_device", code)

    def test_block_comment_state_carries_across_lines(self) -> None:
        _, in_block = mono_lint.strip_code_line("/* begin rand(", False)
        self.assertTrue(in_block)
        code, in_block = mono_lint.strip_code_line("still rand() */ x = 1;", True)
        self.assertFalse(in_block)
        self.assertNotIn("rand", code)
        self.assertIn("x = 1;", code)


class TreeIsCleanTest(unittest.TestCase):
    def test_repository_tree_passes(self) -> None:
        root = pathlib.Path(__file__).resolve().parent.parent
        violations = mono_lint.lint_tree(root)
        self.assertEqual(
            [f"{v.path}:{v.line_number} [{v.rule}]" for v in violations], []
        )


if __name__ == "__main__":
    unittest.main()
