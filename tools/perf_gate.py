#!/usr/bin/env python3
"""Perf-smoke gate: compare a bench JSON against the committed baseline.

Each --gate NAME:MIN_RATIO asserts that scenario NAME's events_per_sec in the
current run is at least MIN_RATIO times the committed baseline's. Ratios are
deliberately generous (CI runners are noisy and heterogeneous): the gate exists
to catch order-of-magnitude regressions of the kind that motivated it — the
max-min fabric shipping at 4.8x below the legacy model — not 10% wobble.
Scenarios without a --gate are printed for trend inspection but never fail.

Each --pair NAME:OTHER:MIN_RATIO[:MAX_RATIO] compares two scenarios *within
the current run* (immune to runner speed): NAME's events_per_sec must be at
least MIN_RATIO times OTHER's. This is the telemetry-overhead gate: the
always-on instrumentation build must stay within 5% of its telemetry-off twin.

Pairs are also checked for *inversion*: NAME (the instrumented side) measuring
faster than OTHER (the stripped side) beyond MAX_RATIO is not a speedup, it is
a broken measurement — unwarmed sides, cold-start costs landing on one side of
the ratio, or mislabeled scenarios — and once such a measurement is committed
as the baseline it silently devalues every later comparison against it.
MAX_RATIO defaults to 1/MIN_RATIO (a symmetric noise band). The committed
baseline's own pair ratio is checked against the same band, so a run that
would freeze an inverted pair into bench/baselines/ fails before it can.

Usage:
  perf_gate.py --baseline bench/baselines/BENCH_simcore.json \
               --current BENCH_simcore.json \
               --gate fabric_churn_maxmin:0.35 \
               --gate fabric_churn_maxmin_audit:0.35 \
               --pair fabric_churn_maxmin:fabric_churn_maxmin_telemetry_off:0.95
"""

import argparse
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="NAME:MIN_RATIO",
        help="fail if current events_per_sec < MIN_RATIO * baseline's",
    )
    parser.add_argument(
        "--pair",
        action="append",
        default=[],
        metavar="NAME:OTHER:MIN_RATIO[:MAX_RATIO]",
        help=(
            "fail if current NAME's events_per_sec < MIN_RATIO * current "
            "OTHER's, or > MAX_RATIO * OTHER's (inverted pair; default "
            "MAX_RATIO = 1/MIN_RATIO). The baseline's pair is checked too."
        ),
    )
    args = parser.parse_args()

    baseline = load_scenarios(args.baseline)
    current = load_scenarios(args.current)

    gates = {}
    for spec in args.gate:
        name, _, ratio = spec.rpartition(":")
        if not name:
            parser.error(f"--gate {spec!r} is not NAME:MIN_RATIO")
        gates[name] = float(ratio)

    failures = []
    width = max((len(n) for n in current), default=0)
    for name, scenario in current.items():
        eps = scenario["events_per_sec"]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {eps:>12,.0f} ev/s  (no baseline entry)")
            continue
        base_eps = base["events_per_sec"]
        ratio = eps / base_eps if base_eps else float("inf")
        line = f"{name:<{width}}  {eps:>12,.0f} ev/s  {ratio:6.2f}x baseline"
        if name in gates:
            floor = gates[name]
            verdict = "ok" if ratio >= floor else "FAIL"
            line += f"  [gate >= {floor:.2f}x: {verdict}]"
            if ratio < floor:
                failures.append(
                    f"{name}: {eps:,.0f} ev/s is {ratio:.2f}x the baseline "
                    f"{base_eps:,.0f} ev/s (gate requires >= {floor:.2f}x)"
                )
        print(line)

    missing = sorted(set(gates) - set(current))
    for name in missing:
        failures.append(f"{name}: gated scenario missing from {args.current}")

    for spec in args.pair:
        parts = spec.split(":")
        if len(parts) not in (3, 4):
            parser.error(f"--pair {spec!r} is not NAME:OTHER:MIN_RATIO[:MAX_RATIO]")
        name, other, floor = parts[0], parts[1], float(parts[2])
        ceiling = float(parts[3]) if len(parts) == 4 else 1.0 / floor
        if ceiling < floor:
            parser.error(f"--pair {spec!r}: MAX_RATIO {ceiling} < MIN_RATIO {floor}")
        for label, scenarios, path in (
            ("current", current, args.current),
            ("baseline", baseline, args.baseline),
        ):
            if name not in scenarios or other not in scenarios:
                if label == "baseline":
                    # A baseline may legitimately predate a scenario; only the
                    # current run is required to carry both sides.
                    continue
                absent = name if name not in scenarios else other
                failures.append(f"{absent}: paired scenario missing from {path}")
                continue
            eps = scenarios[name]["events_per_sec"]
            other_eps = scenarios[other]["events_per_sec"]
            ratio = eps / other_eps if other_eps else float("inf")
            if ratio < floor:
                verdict = "FAIL"
                failures.append(
                    f"{name} ({label}): {eps:,.0f} ev/s is {ratio:.2f}x of "
                    f"{other}'s {other_eps:,.0f} ev/s "
                    f"(pair gate requires >= {floor:.2f}x)"
                )
            elif ratio > ceiling:
                verdict = "FAIL (inverted)"
                failures.append(
                    f"{name} ({label}): {eps:,.0f} ev/s is {ratio:.2f}x of "
                    f"{other}'s {other_eps:,.0f} ev/s — the stripped variant "
                    f"measured slower than the instrumented one (pair gate "
                    f"allows <= {ceiling:.2f}x); this is a measurement "
                    f"artifact (cold start / run ordering), not a speedup"
                )
            else:
                verdict = "ok"
            print(
                f"{name} vs {other} ({label})  {ratio:6.2f}x  "
                f"[pair gate {floor:.2f}x..{ceiling:.2f}x: {verdict}]"
            )

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
