// Fixture: include-layering must flag edges that leave the declared layer DAG
// when this file is linted as a member of src/simcore (--layer src/simcore).
// The simulation stack must never reach into the wall-clock world.
#include "src/simcore/simulation.h"   // OK: own layer.
#include "src/common/units.h"         // OK: declared dependency.
#include "src/engine/worker.h"        // VIOLATION: sim -> engine.
#include "src/api/context.h"          // VIOLATION: sim -> api.
#include "src/cluster/network.h"      // VIOLATION: simcore is below cluster.
#include <vector>                     // OK: system headers are out of scope.

// An include mentioned in a comment stays quiet:
//   #include "src/engine/fabric.h"
