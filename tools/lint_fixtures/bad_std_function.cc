// Fixture for the std-function-hot-path rule: std::function in event-kernel
// code (src/simcore) must be flagged unless tagged as config-time.
#include <functional>

namespace monosim {

struct BadEventRecord {
  double when;
  std::function<void()> callback;  // VIOLATION: per-capture heap allocation.
};

// VIOLATION: std::function parameter on a schedule-path signature.
void ScheduleLike(double when, std::function<void()> fn);

// Config-time capacity model, evaluated at setup only.
// mono_lint: allow(std-function-hot-path) -- bound once at setup, never per event.
using CapacityModel = std::function<double(double)>;

// Mentioning std::function<void()> in a comment is fine; so is "std::function<int()>"
// inside a string literal:
inline const char* kDoc = "std::function<void()> is banned here";

}  // namespace monosim
