// mono_lint fixture: domain-ownership. A component in one domain may not
// mutate a component of another domain except through sanctioned channels;
// const queries and ctor wiring are allowed. Every line marked VIOLATION must
// be flagged; mono_lint_test.py asserts the exact count.
// Not compiled — the macros are stand-ins for src/common/domain.h.

namespace monosim {

class NetworkFabricSim {
 public:
  MONO_DOMAIN("fabric");
  void StartFlow(int src, int dst, long bytes);  // Sanctioned channel.
  void Poke();                                   // Unsanctioned mutation.
  int flows() const { return flows_; }
  int flows_ = 0;
};

class DriverSim {
 public:
  MONO_DOMAIN("driver");
  explicit DriverSim(NetworkFabricSim* fabric);
  NetworkFabricSim& fabric() { return *fabric_; }
  void Tick();

 private:
  NetworkFabricSim* fabric_;
};

DriverSim::DriverSim(NetworkFabricSim* fabric) : fabric_(fabric) {
  fabric_->Poke();  // OK: ctors wire the component graph.
}

void DriverSim::Tick() {
  // VIOLATION: cross-domain non-const call outside the sanctioned channels.
  fabric_->Poke();
  // OK: const query.
  int f = fabric_->flows();
  // OK: sanctioned channel.
  fabric_->StartFlow(0, 1, f);
  // VIOLATION: cross-domain member assignment.
  fabric_->flows_ = 0;
}

}  // namespace monosim
