// mono_lint fixture: domain-ownership, clean twin. Same-domain calls, const
// queries, sanctioned channels, and an audited allow tag all stay quiet.
// Not compiled — the macros are stand-ins for src/common/domain.h.

namespace monosim {

class NetworkFabricSim {
 public:
  MONO_DOMAIN("fabric");
  void StartFlow(int src, int dst, long bytes);  // Sanctioned channel.
  void Poke();
  int flows() const { return flows_; }

 private:
  int flows_ = 0;
};

class MachineSim {
 public:
  MONO_DOMAIN("machine");
  void Step();
};

class ClusterDriverSim {
 public:
  MONO_DOMAIN("driver");
  void Tick();
  void EnableTraces();

 private:
  NetworkFabricSim* fabric_;
};

class PeerDriverSim {
 public:
  MONO_DOMAIN("driver");
  void Nudge(ClusterDriverSim* peer) { peer->Tick(); }  // OK: same domain.
};

void ClusterDriverSim::Tick() {
  // OK: const query and sanctioned channel.
  fabric_->StartFlow(0, 1, fabric_->flows());
}

void ClusterDriverSim::EnableTraces() {
  // OK: audited cross-domain call, tagged with the reason.
  // mono_lint: allow(domain-ownership) -- config-time fan-out before the run.
  fabric_->Poke();
}

}  // namespace monosim
