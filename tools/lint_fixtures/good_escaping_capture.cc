// mono_lint fixture: escaping-capture, clean twin. Value captures, `this` in
// a MONO_SIM_OWNED class, and an audited allow tag all stay quiet.
// Not compiled — the macros and types are stand-ins for src/common/domain.h.
#include <functional>

namespace monosim {

class DiskSchedulerSim {
 public:
  MONO_DOMAIN("machine");
  void EnqueueRead(int phase, long bytes,
                   std::function<void(double, double)> done);
};

class OwnedTaskSim {
 public:
  MONO_DOMAIN("machine");
  // The executor keeps this object alive until its last callback has fired.
  MONO_SIM_OWNED;
  void Run();

 private:
  void Done();
  DiskSchedulerSim* disk_;
  double total_ = 0.0;
};

void OwnedTaskSim::Run() {
  // OK: value-captured pointer to long-lived state.
  double* total = &total_;
  disk_->EnqueueRead(0, 1, [total](double s, double w) { *total += s + w; });
  // OK: `this` in a MONO_SIM_OWNED class.
  ScheduleAfter(0.0, [this] { Done(); });
  // OK: audited by-reference capture, tagged with the lifetime argument.
  double acc = 0.0;
  // mono_lint: allow(escaping-capture) -- the frame blocks below until the callback fires.
  disk_->EnqueueRead(0, 1, [&acc](double s, double) { acc += s; });
}

}  // namespace monosim
