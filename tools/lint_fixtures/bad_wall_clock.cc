// mono_lint fixture: wall-clock use inside simulation code. Every marked line
// must be flagged by the `wall-clock` rule (mono_lint_test.py asserts it).
#include <chrono>
#include <ctime>

namespace monosim {

double SimulatedServiceTime() {
  const auto start = std::chrono::steady_clock::now();  // BAD: wall-clock
  const auto wall = std::chrono::system_clock::now();   // BAD: wall-clock
  (void)wall;
  const auto t = time(nullptr);  // BAD: wall-clock
  (void)t;
  return std::chrono::duration<double>(std::chrono::high_resolution_clock::now() -
                                       start)
      .count();  // BAD: wall-clock (high_resolution_clock)
}

}  // namespace monosim
