// mono_lint fixture: forbidden entropy sources in simulation code. Every
// marked line must be flagged by the `entropy` rule.
#include <cstdlib>
#include <random>

namespace monosim {

int UnreproducibleDraws() {
  std::random_device device;            // BAD: non-reproducible seed
  std::mt19937_64 engine(device());     // BAD: platform-varying engine
  std::uniform_int_distribution<int> dist(0, 9);  // BAD: stdlib-varying
  srand(42);                            // BAD: hidden global state
  return dist(engine) + rand();         // BAD: rand()
}

}  // namespace monosim
