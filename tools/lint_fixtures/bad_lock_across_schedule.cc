// mono_lint fixture: lock-across-schedule. Engine code must not call a
// deferring or blocking API while holding a MutexLock: the callee may run a
// completion callback that takes the same mutex. Every line marked VIOLATION
// must be flagged; mono_lint_test.py asserts the exact count.
// Not compiled — the types are stand-ins for src/common/mutex.h.
#include <functional>

namespace monotasks {

class Monotask;

class CpuScheduler {
 public:
  MONO_DOMAIN("machine");
  void Submit(Monotask* task);
};

class Router {
 public:
  void OnComplete(Monotask* task);

 private:
  monoutil::Mutex mutex_;
  std::function<void(Monotask*)> submit_;
  CpuScheduler* cpu_;
};

void Router::OnComplete(Monotask* task) {
  monoutil::MutexLock lock(mutex_);
  // VIOLATION: deferring scheduler call with the lock held.
  cpu_->Submit(task);
  // VIOLATION: routing functor (blocks into a scheduler) with the lock held.
  submit_(task);
  // VIOLATION: kernel scheduling with the lock held.
  ScheduleAfter(0.0, [task] { (void)task; });
}

}  // namespace monotasks
