// mono_lint fixture: pointer-keyed unordered containers in simulation code.
// Every marked declaration must be flagged by the `ptr-keyed-container` rule.
#include <unordered_map>
#include <unordered_set>

namespace monosim {

class TaskSim;

class Registry {
 public:
  int Total() const {
    int total = 0;
    for (const auto& [task, weight] : weights_) {  // Heap-ordered iteration!
      (void)task;
      total += weight;
    }
    return total;
  }

 private:
  std::unordered_map<TaskSim*, int> weights_;  // BAD: pointer-keyed map
  std::unordered_set<const TaskSim*> seen_;    // BAD: pointer-keyed set
};

}  // namespace monosim
