// mono_lint fixture: address-ordered containers/comparators in simulation
// code. Every marked line must be flagged by the `address-ordered` rule.
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace monosim {

class TaskSim;

class WaitQueue {
 private:
  std::set<TaskSim*> waiters_;            // BAD: ordered by address
  std::map<TaskSim*, double> deadlines_;  // BAD: ordered by address
  std::priority_queue<TaskSim*, std::vector<TaskSim*>, std::less<TaskSim*>>
      heap_;                              // BAD: std::less over pointers
};

}  // namespace monosim
