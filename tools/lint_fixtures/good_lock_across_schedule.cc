// mono_lint fixture: lock-across-schedule, clean twin. The canonical shape:
// collect ready work under the lock, close the scope, submit after release.
// Not compiled — the types are stand-ins for src/common/mutex.h.
#include <functional>
#include <vector>

namespace monotasks {

class Monotask;

class CpuScheduler {
 public:
  MONO_DOMAIN("machine");
  void Submit(Monotask* task);
};

class Router {
 public:
  void OnComplete(Monotask* task);

 private:
  monoutil::Mutex mutex_;
  std::function<void(Monotask*)> submit_;
  CpuScheduler* cpu_;
  std::vector<Monotask*> ready_;
};

void Router::OnComplete(Monotask* task) {
  std::vector<Monotask*> ready;
  {
    monoutil::MutexLock lock(mutex_);
    ready_.push_back(task);
    ready.swap(ready_);
  }
  // OK: the lock scope closed above.
  for (Monotask* t : ready) {
    cpu_->Submit(t);
    submit_(t);
  }
}

}  // namespace monotasks
