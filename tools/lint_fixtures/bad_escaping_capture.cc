// mono_lint fixture: escaping-capture. Lambdas handed to deferring APIs
// outlive the calling frame, so by-reference captures dangle and `this`
// captures are only safe in MONO_SIM_OWNED classes. Every line marked
// VIOLATION must be flagged; mono_lint_test.py asserts the exact count.
// Not compiled — the macros and types are stand-ins for src/common/domain.h.
#include <functional>

namespace monosim {

class DiskSchedulerSim {
 public:
  MONO_DOMAIN("machine");
  void EnqueueRead(int phase, long bytes,
                   std::function<void(double, double)> done);
};

class TaskSim {
 public:
  MONO_DOMAIN("machine");
  void Run();

 private:
  void Done();
  DiskSchedulerSim* disk_;
  long bytes_ = 0;
};

void TaskSim::Run() {
  double local_total = 0.0;
  // VIOLATION: by-reference capture of a local escapes into the callback.
  disk_->EnqueueRead(0, bytes_, [&local_total](double service, double wait) {
    local_total += service + wait;
  });
  // VIOLATION: [&] default capture.
  disk_->EnqueueRead(0, bytes_, [&](double service, double) {
    local_total += service;
  });
  // VIOLATION: `this` capture, but TaskSim is not MONO_SIM_OWNED.
  ScheduleAfter(0.0, [this] { Done(); });
  // VIOLATION: init-capture that takes an address.
  disk_->EnqueueRead(0, bytes_, [total = &local_total](double s, double) {
    *total += s;
  });
}

}  // namespace monosim
