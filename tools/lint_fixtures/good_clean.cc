// mono_lint fixture: determinism-clean simulation code, including every
// sanctioned suppression form. mono_lint_test.py asserts zero violations.
#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"

namespace monosim {

class TaskSim;

class Registry {
 public:
  explicit Registry(uint64_t seed) : rng_(seed) {}

  uint64_t Draw() { return rng_.NextU64(); }

 private:
  monoutil::Rng rng_;  // The one sanctioned entropy source.

  // Stable-id keys: iteration order is value order, not heap order.
  std::unordered_map<uint64_t, int> weights_by_id_;
  // String keys are fine too; mentioning steady_clock in a comment is fine.
  std::unordered_map<std::string, int> by_name_;
  // Point-lookup-only registry, audited by hand:
  // mono_lint: iteration-free
  std::unordered_map<TaskSim*, int> lookup_only_;
  std::unordered_map<TaskSim*, int> also_ok_;  // mono_lint: iteration-free
  // Wall-clock measurement gated out of simulation builds, reviewed:
  // mono_lint: allow(wall-clock) -- debug-only probe, stripped from sim builds.
  int64_t epoch_ = std::chrono::steady_clock::now().time_since_epoch().count();
};

inline const char* Describe() {
  return "calls rand() and std::random_device in a string literal";
}

}  // namespace monosim
