// Fixture: raw-unit-double must flag unit-bearing double/int64_t declarations
// in a simulation header — members, parameters (including multi-line parameter
// lists), and accessors — and stay quiet on exempt names, tagged lines, and
// mentions inside comments or strings.
#ifndef MONO_LINT_FIXTURE_BAD_RAW_UNIT_DOUBLE_H_
#define MONO_LINT_FIXTURE_BAD_RAW_UNIT_DOUBLE_H_

#include <cstdint>

struct FlowStats {
  double latency;            // VIOLATION: a time quantity as a bare double.
  int64_t total_bytes = 0;   // VIOLATION: a byte count as a bare int64_t.
  double cpu_seconds = 0.0;  // OK: the name spells the unit (sanctioned raw boundary).
  double load_fraction;      // OK: dimensionless.
  double time_scale = 1.0;   // OK: dimensionless multiplier.
  // Unit-agnostic by design: this trace records fractions-of-capacity too.
  // mono_lint: allow(raw-unit-double) -- unit-agnostic: fractions-of-capacity too.
  double rate = 0.0;         // OK: tagged with the reason above.
};

// VIOLATION x2: `bandwidth` parameter and `duration` on the continuation line.
void Configure(double bandwidth,
               double duration);

class Device {
 public:
  double bandwidth() const;  // VIOLATION: accessor returning a raw rate.
  double seconds() const;    // OK: explicit-unit escape hatch.

 private:
  // `static_cast<double>(x)` and `std::function<double(double)>`-style
  // template mentions must not match: "double" is not declaring a name there.
  int64_t count_ = static_cast<int64_t>(0);
};

// A comment saying double latency; and a string "double timeout;" stay quiet.
inline const char* kLabel = "double timeout;";

#endif  // MONO_LINT_FIXTURE_BAD_RAW_UNIT_DOUBLE_H_
