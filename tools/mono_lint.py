#!/usr/bin/env python3
"""mono_lint: repo-specific determinism static analysis.

The cluster simulator's contract is "same seed => same schedule => same
figures" (DESIGN.md, "Determinism contract & static enforcement"). This linter
enforces the source-level rules that contract rests on, over the simulation
directories (src/simcore, src/cluster, src/monotask, src/multitask, src/model,
src/framework, src/storage, src/workloads):

  wall-clock      No std::chrono::{system,steady,high_resolution}_clock,
                  time(), gettimeofday(), or clock_gettime() in simulation
                  code. Virtual time comes from Simulation::now() only. The
                  real-time engine (src/engine, src/api) legitimately measures
                  wall time and is out of scope.

  entropy         No std::random_device, rand()/srand(), std::mt19937 or other
                  <random> engines/distributions (their outputs differ across
                  standard libraries), or std::random_shuffle. monoutil::Rng
                  (SplitMix64-seeded xoshiro256**) is the only entropy source.

  ptr-keyed-container
                  No unordered_map/unordered_set keyed by a pointer in
                  simulation code: iteration order follows the heap layout, so
                  any schedule decision derived from it silently depends on
                  allocator behaviour. Flagged at the container declaration.
                  If every access is a point lookup (find/emplace/erase, never
                  iteration), tag the declaration `// mono_lint: iteration-free`
                  -- but prefer keying by a stable id.

  address-ordered No std::map/std::set keyed by a pointer and no
                  std::less<T*>/std::greater<T*> comparators: address order is
                  allocation order, which is not reproducible.

  std-function-hot-path
                  (src/simcore only) No std::function in the event kernel:
                  capturing beyond its small-buffer bound heap-allocates on
                  the schedule/fire path, which the pooled kernel exists to
                  avoid. Take a template callable and wrap it in
                  InlineCallback. Config-time uses (capacity models, setup
                  plumbing) tag `// mono_lint: allow(std-function-hot-path)`
                  with a comment saying why they are off the hot path.

Benchmark sources (bench/) are additionally checked against the entropy rule
only: benches measure wall time legitimately, but must seed exclusively through
monoutil::Rng so the run digest recorded in BENCH_*.json is same-schedule.

Suppressions, on the flagged line or the line directly above it:
  // mono_lint: iteration-free        (ptr-keyed-container only)
  // mono_lint: allow(<rule-name>)    (any rule; say why in a comment)

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.

Usage:
  mono_lint.py --root <repo-root>                # lint the tree
  mono_lint.py --root <repo-root> file.cc ...    # lint specific files with
                                                 # the full rule set (fixtures)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, NamedTuple

# Rule name -> list of (compiled regex, human message).
RULES: dict[str, list[tuple[re.Pattern[str], str]]] = {
    "wall-clock": [
        (
            re.compile(
                r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            ),
            "wall-clock source in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
            "wall-clock syscall in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
            "time() in simulation code; use Simulation::now()",
        ),
    ],
    "entropy": [
        (
            re.compile(r"std::random_device|\brandom_device\b"),
            "std::random_device is non-reproducible; seed a monoutil::Rng",
        ),
        (
            re.compile(r"(?<![\w:.>])s?rand\s*\("),
            "rand()/srand() is a hidden global entropy source; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"
            ),
            "<random> engines vary across platforms; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(uniform_int_distribution|uniform_real_distribution|"
                r"normal_distribution|exponential_distribution|"
                r"bernoulli_distribution|poisson_distribution)\b"
            ),
            "<random> distributions vary across standard libraries; "
            "use monoutil::Rng's distribution helpers",
        ),
        (
            re.compile(r"\brandom_shuffle\s*\("),
            "std::random_shuffle uses unspecified entropy; "
            "shuffle with monoutil::Rng::NextBelow",
        ),
    ],
    "ptr-keyed-container": [
        (
            re.compile(r"\bunordered_(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "pointer-keyed unordered container: iteration order is heap order; "
            "key by a stable id, or tag `// mono_lint: iteration-free` if it is "
            "never iterated",
        ),
    ],
    "address-ordered": [
        (
            re.compile(r"\bstd::(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "std::map/std::set keyed by a pointer orders by address, which is "
            "allocation order; key by a stable id",
        ),
        (
            re.compile(r"\bstd::(less|greater)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "address-ordered comparator; compare stable ids instead",
        ),
    ],
    "std-function-hot-path": [
        (
            re.compile(r"\bstd::function\s*<"),
            "std::function in the event kernel heap-allocates per oversize "
            "capture on the schedule/fire path; take a template callable and "
            "wrap it in InlineCallback, or tag a config-time use "
            "`// mono_lint: allow(std-function-hot-path)`",
        ),
    ],
}

ALL_RULES = tuple(RULES)

# Directories linted with the full rule set, relative to --root.
SIM_DIRS = (
    "src/simcore",
    "src/cluster",
    "src/monotask",
    "src/multitask",
    "src/model",
    "src/framework",
    "src/storage",
    "src/workloads",
)

# The hot-path callback rule applies only to the event kernel itself; in the
# layers above it std::function off the event hot path is legitimate.
HOT_PATH_DIRS = ("src/simcore",)
SIM_RULES = tuple(r for r in RULES if r != "std-function-hot-path")

# Directories linted with a reduced rule set (wall time is legitimate there,
# entropy is not).
BENCH_DIRS = ("bench",)
BENCH_RULES = ("entropy",)

SOURCE_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

SUPPRESS_ALLOW = re.compile(r"//\s*mono_lint:\s*allow\(([\w,\- ]+)\)")
SUPPRESS_ITERFREE = re.compile(r"//\s*mono_lint:\s*iteration-free\b")


class Violation(NamedTuple):
    path: pathlib.Path
    line_number: int  # 1-based
    rule: str
    message: str
    line: str


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Returns `line` with comments and string/char literal contents blanked.

    Keeps column positions stable (replaced with spaces). `in_block_comment`
    carries /* ... */ state across lines.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            out.append(" " * (n - i))
            i = n
        elif ch == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
        elif ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), in_block_comment


def suppressions(raw_line: str) -> set[str]:
    """Rules suppressed by directives on `raw_line` (comment text included)."""
    allowed: set[str] = set()
    match = SUPPRESS_ALLOW.search(raw_line)
    if match:
        allowed.update(part.strip() for part in match.group(1).split(","))
    if SUPPRESS_ITERFREE.search(raw_line):
        allowed.add("ptr-keyed-container")
    return allowed


def lint_file(path: pathlib.Path, rules: Iterable[str]) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        raise SystemExit(f"mono_lint: cannot read {path}: {err}")
    violations: list[Violation] = []
    in_block = False
    previous_raw = ""
    for line_number, raw in enumerate(text.splitlines(), start=1):
        code, in_block = strip_code_line(raw, in_block)
        active_suppressions = suppressions(raw) | suppressions(previous_raw)
        previous_raw = raw
        for rule in rules:
            if rule in active_suppressions:
                continue
            for pattern, message in RULES[rule]:
                if pattern.search(code):
                    violations.append(
                        Violation(path, line_number, rule, message, raw.strip())
                    )
                    break  # One report per rule per line.
    return violations


def iter_sources(root: pathlib.Path, directory: str) -> Iterable[pathlib.Path]:
    base = root / directory
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def lint_tree(root: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    for directory in SIM_DIRS:
        rules = ALL_RULES if directory in HOT_PATH_DIRS else SIM_RULES
        for path in iter_sources(root, directory):
            violations.extend(lint_file(path, rules))
    for directory in BENCH_DIRS:
        for path in iter_sources(root, directory):
            violations.extend(lint_file(path, BENCH_RULES))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, type=pathlib.Path,
                        help="repository root")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated rule subset (explicit files only)")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="lint these files (full rule set) instead of the tree")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for rule in rules:
        if rule not in RULES:
            parser.error(f"unknown rule {rule!r}; known: {', '.join(ALL_RULES)}")

    if args.files:
        violations = []
        for path in args.files:
            violations.extend(lint_file(path, rules))
    else:
        violations = lint_tree(args.root)

    for v in violations:
        try:
            shown = v.path.resolve().relative_to(args.root.resolve())
        except ValueError:
            shown = v.path
        print(f"{shown}:{v.line_number}: [{v.rule}] {v.message}")
        print(f"    {v.line}")
    if violations:
        print(f"mono_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
