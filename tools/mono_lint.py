#!/usr/bin/env python3
"""mono_lint: repo-specific determinism and event-discipline static analysis.

The cluster simulator's contract is "same seed => same schedule => same
figures" (DESIGN.md, "Determinism contract & static enforcement"). This linter
enforces the source-level rules that contract rests on, over the simulation
directories (src/simcore, src/cluster, src/monotask, src/multitask, src/model,
src/framework, src/storage, src/workloads):

  wall-clock      No std::chrono::{system,steady,high_resolution}_clock,
                  time(), gettimeofday(), or clock_gettime() in simulation
                  code. Virtual time comes from Simulation::now() only. The
                  real-time engine (src/engine, src/api) legitimately measures
                  wall time and is out of scope.

  entropy         No std::random_device, rand()/srand(), std::mt19937 or other
                  <random> engines/distributions (their outputs differ across
                  standard libraries), or std::random_shuffle. monoutil::Rng
                  (SplitMix64-seeded xoshiro256**) is the only entropy source.

  ptr-keyed-container
                  No unordered_map/unordered_set keyed by a pointer in
                  simulation code: iteration order follows the heap layout, so
                  any schedule decision derived from it silently depends on
                  allocator behaviour. Flagged at the container declaration.
                  If every access is a point lookup (find/emplace/erase, never
                  iteration), tag the declaration `// mono_lint: iteration-free`
                  -- but prefer keying by a stable id.

  address-ordered No std::map/std::set keyed by a pointer and no
                  std::less<T*>/std::greater<T*> comparators: address order is
                  allocation order, which is not reproducible.

  std-function-hot-path
                  (src/simcore only) No std::function in the event kernel:
                  capturing beyond its small-buffer bound heap-allocates on
                  the schedule/fire path, which the pooled kernel exists to
                  avoid. Take a template callable and wrap it in
                  InlineCallback. Config-time uses (capacity models, setup
                  plumbing) tag `// mono_lint: allow(std-function-hot-path)`
                  with a comment saying why they are off the hot path.

  raw-unit-double (token-aware; simulation headers only) No new `double` or
                  `int64_t` parameter, member, or accessor whose name reads
                  like a time/rate/byte quantity (`latency`, `delay`,
                  `timeout`, `duration`, `*_time`, `*_bytes`, `bandwidth`,
                  `rate`, ...) in a simulation-dir API. Those quantities are
                  strong types now (monoutil::SimTime / Bytes /
                  BytesPerSecond, src/common/units.h); a raw double can be
                  swapped with any other double silently. Names that spell
                  their unit (`*_seconds`) and dimensionless shapes
                  (`*_fraction`, `*_ratio`, `*_scale`, `*_factor`) stay raw
                  by convention. Deliberately unit-agnostic APIs (FluidServer
                  work rates, RateTrace) tag
                  `// mono_lint: allow(raw-unit-double)` with the reason.

  include-layering
                  (token-aware; all of src/) #include edges must follow the
                  declared layer DAG (LAYER_DEPS below). In particular the
                  simulation stack must never include src/engine or src/api:
                  the simulator is deterministic virtual time, the engine is
                  wall clock, and an include edge from sim to engine would
                  let wall-clock types leak into schedule decisions.

Cross-TU rules (v3). These run over a project-wide index: every class in
src/ is recorded with its file, `MONO_DOMAIN(...)` ownership domain,
`MONO_SIM_OWNED` lifetime marker (src/common/domain.h), component-typed
members, pass-through accessors (methods returning a component by
reference/pointer), and const methods. Member-access chains such as
`cluster_->machine(m).disk(d).Read(...)` are resolved through that index.

  escaping-capture
                  A lambda passed to a deferring API (Simulation::ScheduleAt /
                  ScheduleAfter / AtEpochEnd, FluidServer::Submit,
                  DiskSim::Read/Write, BufferCacheSim::Write/WriteSync,
                  NetworkFabricSim::StartFlow/SendControl, the monotask
                  resource schedulers' Enqueue*/Acquire, and the engine's
                  SubmitDag/SubmitDetached/Submit) outlives the current
                  frame. It must not capture by reference (`[&]`, `[&x]`) or
                  capture the address of a local in an init-capture. `this`
                  may be captured only in classes marked MONO_SIM_OWNED in
                  their header (the object outlives the simulation run);
                  anything else needs an audited
                  `// mono_lint: allow(escaping-capture) -- <why safe>` tag.

  domain-ownership
                  Every simulation component declares
                  `MONO_DOMAIN("machine"|"fabric"|"driver"|"storage")`.
                  A method of a component in one domain may not call a
                  non-const method of (or assign to a member of) a component
                  in a different domain, except through the sanctioned
                  channels (SANCTIONED_CHANNELS below: scheduled events reach
                  everything by design, fabric control messages, the
                  driver->executor work kick, and the executor->stage metrics
                  reporting surface). Constructors/destructors are exempt:
                  wiring the component graph is configuration, not steady-
                  state execution. The same rules are checked dynamically in
                  audited runs (src/common/domain.h).

  lock-across-schedule
                  (src/engine only) No call to a deferring or blocking API
                  (scheduler Submit, SubmitDag, SubmitDetached, the `submit_`
                  routing callback, fabric Transfer, block-device Read/Write)
                  on a path that token analysis shows inside a `MutexLock`
                  scope: the callee may block on a device or take another
                  scheduler's mutex, inverting lock order.

Tree-only checks (always on when linting with --root and no explicit files):

  unmapped-dir    Every directory under src/ must appear in DIR_RULES. A new
                  directory must be placed in the layer DAG and rule map
                  explicitly, not silently skipped.

  undeclared-domain
                  Every component in COMPONENT_ROSTER must be found by the
                  indexer and carry a MONO_DOMAIN annotation.

  suppression-hygiene
                  Every `// mono_lint: allow(rule)` tag must carry a trailing
                  reason on the same line and name a known rule; a tag that
                  suppresses nothing is stale and reported as unused.

Benchmark sources (bench/) are additionally checked against the entropy rule
only: benches measure wall time legitimately, but must seed exclusively through
monoutil::Rng so the run digest recorded in BENCH_*.json is same-schedule.

Suppressions, on the flagged line or the line directly above it:
  // mono_lint: iteration-free            (ptr-keyed-container only)
  // mono_lint: allow(<rule>) -- <why>    (any rule; the reason is required)

Exit status: 0 when clean, 1 when violations were found (or the --budget
was exceeded), 2 on usage errors.

Usage:
  mono_lint.py --root <repo-root>                # lint the tree
  mono_lint.py --root <repo-root> file.cc ...    # lint specific files with
                                                 # the full rule set (fixtures)
  mono_lint.py --root . --stats-json out.json --budget-seconds 5
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
import time
from typing import Iterable, NamedTuple

# Rule name -> list of (compiled regex, human message).
RULES: dict[str, list[tuple[re.Pattern[str], str]]] = {
    "wall-clock": [
        (
            re.compile(
                r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            ),
            "wall-clock source in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
            "wall-clock syscall in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
            "time() in simulation code; use Simulation::now()",
        ),
    ],
    "entropy": [
        (
            re.compile(r"std::random_device|\brandom_device\b"),
            "std::random_device is non-reproducible; seed a monoutil::Rng",
        ),
        (
            re.compile(r"(?<![\w:.>])s?rand\s*\("),
            "rand()/srand() is a hidden global entropy source; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"
            ),
            "<random> engines vary across platforms; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(uniform_int_distribution|uniform_real_distribution|"
                r"normal_distribution|exponential_distribution|"
                r"bernoulli_distribution|poisson_distribution)\b"
            ),
            "<random> distributions vary across standard libraries; "
            "use monoutil::Rng's distribution helpers",
        ),
        (
            re.compile(r"\brandom_shuffle\s*\("),
            "std::random_shuffle uses unspecified entropy; "
            "shuffle with monoutil::Rng::NextBelow",
        ),
    ],
    "ptr-keyed-container": [
        (
            re.compile(r"\bunordered_(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "pointer-keyed unordered container: iteration order is heap order; "
            "key by a stable id, or tag `// mono_lint: iteration-free` if it is "
            "never iterated",
        ),
    ],
    "address-ordered": [
        (
            re.compile(r"\bstd::(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "std::map/std::set keyed by a pointer orders by address, which is "
            "allocation order; key by a stable id",
        ),
        (
            re.compile(r"\bstd::(less|greater)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "address-ordered comparator; compare stable ids instead",
        ),
    ],
    "std-function-hot-path": [
        (
            re.compile(r"\bstd::function\s*<"),
            "std::function in the event kernel heap-allocates per oversize "
            "capture on the schedule/fire path; take a template callable and "
            "wrap it in InlineCallback, or tag a config-time use "
            "`// mono_lint: allow(std-function-hot-path)`",
        ),
    ],
}

# Token-aware rules (implemented as passes over the token stream rather than
# line regexes) and their messages.
TOKEN_RULES = {
    "raw-unit-double": (
        "raw double/int64_t carries a unit-bearing name in a simulation API; "
        "use monoutil::SimTime / Bytes / BytesPerSecond (src/common/units.h), "
        "spell the unit in the name (*_seconds), or tag "
        "`// mono_lint: allow(raw-unit-double)` with the reason"
    ),
    "include-layering": (
        "include edge violates the layer DAG"
    ),
    "escaping-capture": (
        "lambda passed to a deferring API escapes the current frame; capture "
        "by value, or tag `// mono_lint: allow(escaping-capture)` with the "
        "lifetime argument"
    ),
    "domain-ownership": (
        "cross-domain mutation outside the sanctioned channels; route through "
        "a scheduled event / declared channel, or tag "
        "`// mono_lint: allow(domain-ownership)` with the reason"
    ),
    "lock-across-schedule": (
        "deferring/blocking call while a MutexLock is held; collect work "
        "under the lock and submit after releasing it"
    ),
}

# Checks that only make sense over the whole tree (enabled automatically in
# tree mode; not selectable through --rules).
TREE_RULES = ("unmapped-dir", "undeclared-domain", "suppression-hygiene")

ALL_RULES = tuple(RULES) + tuple(TOKEN_RULES)

# ---------------------------------------------------------------------------
# raw-unit-double: name classification.
# ---------------------------------------------------------------------------

# A declaration name that implies a unit-bearing quantity. Matched against the
# lower-cased identifier.
UNIT_NAME = re.compile(
    r"(^|_)bytes($|_)|bytes_per_second|"
    r"(^|_)bandwidth$|(^|_)rate$|_bps$|"
    r"latency|(^|_)delay$|deadline|timeout|duration|(^|_)interval$|(^|_)time$"
)

# Names that are allowed to stay raw: the unit is spelled out (`*_seconds` is
# the sanctioned raw boundary for work amounts and telemetry aggregates), or
# the quantity is dimensionless.
UNIT_NAME_EXEMPT = re.compile(
    r"seconds|_scale$|(^|_)fraction(s)?$|(^|_)ratio(s)?$|(^|_)factor(s)?$|_cv$")

# Tokens that may follow `double <name>` in a parameter, member, or accessor
# declaration. Anything else (e.g. `>` in a template argument) is not a
# declaration of a named quantity.
DECLARATION_FOLLOWERS = frozenset({",", ";", "=", ")", "{", "("})

TOKEN_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|->|::|[0-9][\w.+-]*|\S")

# ---------------------------------------------------------------------------
# include-layering: the declared layer DAG.
# ---------------------------------------------------------------------------

# Layer -> layers it may #include (besides itself and non-src system headers).
# src/engine and src/api are the wall-clock world; nothing in the simulation
# stack may depend on them.
LAYER_DEPS: dict[str, tuple[str, ...]] = {
    "src/common": (),
    "src/simcore": ("src/common",),
    "src/storage": ("src/common",),
    "src/cluster": ("src/common", "src/simcore"),
    "src/framework": ("src/common", "src/simcore", "src/storage", "src/cluster"),
    "src/model": ("src/common", "src/simcore", "src/cluster", "src/framework"),
    "src/monotask": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/multitask": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/workloads": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/engine": ("src/common",),
    "src/api": ("src/common", "src/engine", "src/model", "src/cluster",
                "src/framework", "src/simcore", "src/storage"),
}

INCLUDE_DIRECTIVE = re.compile(r'^\s*#\s*include\s*"(src/[\w./-]+)"')

# ---------------------------------------------------------------------------
# Per-directory rule map. Every directory under src/ MUST appear here (the
# unmapped-dir tree check enforces it): a new directory gets a deliberate
# placement in the layer DAG and rule set, never a silent skip.
# ---------------------------------------------------------------------------

CROSS_TU_RULES = ("escaping-capture", "domain-ownership")

# The deterministic simulation stack: everything except the kernel-only
# std-function-hot-path rule, plus the cross-TU discipline rules.
_SIM_RULE_SET = tuple(r for r in RULES if r != "std-function-hot-path") + (
    "raw-unit-double", "include-layering") + CROSS_TU_RULES

DIR_RULES: dict[str, tuple[str, ...]] = {
    "src/simcore": tuple(RULES) + ("raw-unit-double",
                                   "include-layering") + CROSS_TU_RULES,
    "src/cluster": _SIM_RULE_SET,
    "src/monotask": _SIM_RULE_SET,
    "src/multitask": _SIM_RULE_SET,
    "src/model": _SIM_RULE_SET,
    "src/framework": _SIM_RULE_SET,
    "src/storage": _SIM_RULE_SET,
    "src/workloads": _SIM_RULE_SET,
    # The layer boundary and lambda discipline still hold in the wall-clock
    # world; wall clock, std::function, and raw doubles are legitimate there.
    "src/common": ("include-layering",),
    "src/engine": ("include-layering", "escaping-capture",
                   "lock-across-schedule"),
    "src/api": ("include-layering", "escaping-capture"),
}

# Directories linted with a reduced rule set (wall time is legitimate there,
# entropy is not).
BENCH_DIRS = ("bench",)
BENCH_RULES = ("entropy",)

SOURCE_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

SUPPRESS_ALLOW = re.compile(r"//\s*mono_lint:\s*allow\(([\w,\- ]+)\)")
SUPPRESS_ITERFREE = re.compile(r"//\s*mono_lint:\s*iteration-free\b")

# ---------------------------------------------------------------------------
# Cross-TU rule tables. These mirror the runtime tables in
# src/common/domain.h / the MONO_DOMAIN_CHANNEL() sites: the linter is the
# static half of the same contract, so keep them in sync.
# ---------------------------------------------------------------------------

# Every simulation component that must carry a MONO_DOMAIN annotation.
COMPONENT_ROSTER = (
    # Virtual-time simulation stack.
    "FluidServer", "DiskSim", "BufferCacheSim", "MachineSim", "ClusterSim",
    "NetworkFabricSim", "DfsSim", "TaskPool", "StageExecution", "JobDriver",
    "SimEnvironment", "MonotasksExecutorSim", "MonoMultitaskSim",
    "CpuSchedulerSim", "DiskSchedulerSim", "NetworkSchedulerSim",
    "SparkExecutorSim", "SparkTaskSim",
    # Threaded engine (static annotation only; thread_annotations.h carries
    # the runtime discipline there).
    "Worker", "CpuScheduler", "DiskScheduler", "NetworkScheduler",
    "LocalDagScheduler", "SimulatedBlockDevice", "InProcessFabric",
)

# Deferring APIs reached through a bare name: these exist only on Simulation,
# so no receiver resolution is needed.
BARE_DEFERRING = ("ScheduleAt", "ScheduleAfter", "AtEpochEnd")

# Deferring APIs reached through a resolved receiver: (class, method). The
# callback argument outlives the call.
DEFERRING_METHODS = frozenset({
    # Qualified kernel scheduling (`sim_->ScheduleAfter(...)`) resolves here
    # rather than through BARE_DEFERRING.
    ("Simulation", "ScheduleAt"), ("Simulation", "ScheduleAfter"),
    ("Simulation", "AtEpochEnd"),
    ("FluidServer", "Submit"),
    ("DiskSim", "Read"), ("DiskSim", "Write"),
    ("BufferCacheSim", "Write"), ("BufferCacheSim", "WriteSync"),
    ("NetworkFabricSim", "StartFlow"), ("NetworkFabricSim", "SendControl"),
    ("CpuSchedulerSim", "Enqueue"),
    ("DiskSchedulerSim", "EnqueueRead"), ("DiskSchedulerSim", "EnqueueWrite"),
    ("NetworkSchedulerSim", "Acquire"),
    ("SparkExecutorSim", "ServeRead"),
    ("LocalDagScheduler", "SubmitDag"),
    ("Worker", "SubmitDetached"),
    ("CpuScheduler", "Submit"), ("DiskScheduler", "Submit"),
    ("NetworkScheduler", "Submit"),
})

# Sanctioned cross-domain call surfaces: (class, method). Mirrors the
# MONO_DOMAIN_CHANNEL() sites in the runtime. A scheduled event is always a
# sanctioned channel (the kernel dispatches under MONO_DOMAIN_NEUTRAL()), so
# only *synchronous* cross-domain surfaces need an entry here.
SANCTIONED_CHANNELS = frozenset({
    # Fabric control messages (paper §3.3): machine-side components talk to
    # the fabric through flows and control sends only.
    ("NetworkFabricSim", "StartFlow"), ("NetworkFabricSim", "SendControl"),
    # Executors (machine domain) pull work from the driver-owned pool and
    # report per-task lifecycle and metrics back to the driver-owned stage.
    ("TaskPool", "TakeTask"),
    ("StageExecution", "TakeTask"), ("StageExecution", "OnTaskStarted"),
    ("StageExecution", "OnTaskFinished"),
    ("StageExecution", "RecordShuffleWrite"),
    ("StageExecution", "result"),
    # The driver kicks the executor after activating a stage.
    ("MonotasksExecutorSim", "OnWorkAvailable"),
    ("SparkExecutorSim", "OnWorkAvailable"),
})

# Engine calls that defer or block (lock-across-schedule). `submit_` is the
# LocalDagScheduler's routing callback into Worker::Route -> scheduler Submit.
ENGINE_BLOCKING_FUNCTORS = ("submit_",)

# STL container operations. A member declared `std::vector<MachineSim> ms_`
# indexes as type MachineSim, so `ms_.size()` would otherwise be read as a
# component method call. Pure container ops terminate analysis; element
# accessors (back/front/at) pass the chain through to the element type.
CONTAINER_METHODS = frozenset({
    "size", "empty", "begin", "end", "rbegin", "rend", "cbegin", "cend",
    "clear", "erase", "insert", "emplace", "push_back", "pop_back",
    "emplace_back", "resize", "reserve", "find", "count", "contains", "swap",
})
CONTAINER_PASSTHROUGH = frozenset({"back", "front", "at"})

ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
                        "++", "--"})

CPP_KEYWORDS = frozenset({
    "if", "for", "while", "return", "switch", "case", "new", "delete",
    "sizeof", "const", "constexpr", "static", "class", "struct", "enum",
    "namespace", "using", "template", "typename", "public", "private",
    "protected", "virtual", "override", "final", "auto", "void", "int",
    "bool", "double", "float", "char", "else", "do", "break", "continue",
    "this", "operator", "true", "false", "nullptr", "friend", "explicit",
    "inline", "mutable", "noexcept", "default",
})

IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")

DOMAIN_DECL = re.compile(r"\bMONO_DOMAIN\(\s*\"(\w+)\"\s*\)")
SIM_OWNED_DECL = re.compile(r"\bMONO_SIM_OWNED\b")


class Violation(NamedTuple):
    path: pathlib.Path
    line_number: int  # 1-based
    rule: str
    message: str
    line: str


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Returns `line` with comments and string/char literal contents blanked.

    Keeps column positions stable (replaced with spaces). `in_block_comment`
    carries /* ... */ state across lines.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            out.append(" " * (n - i))
            i = n
        elif ch == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
        elif ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), in_block_comment


def strip_lines(raw_lines: list[str]) -> list[str]:
    code_lines: list[str] = []
    in_block = False
    for raw in raw_lines:
        code, in_block = strip_code_line(raw, in_block)
        code_lines.append(code)
    return code_lines


def tokenize(code_lines: list[str]) -> list[tuple[str, int]]:
    """Flattens comment/string-stripped lines into (token, 1-based line)."""
    tokens: list[tuple[str, int]] = []
    for line_number, code in enumerate(code_lines, start=1):
        for match in TOKEN_PATTERN.finditer(code):
            tokens.append((match.group(0), line_number))
    return tokens


def is_ident(token: str) -> bool:
    return bool(IDENT_RE.match(token)) and token not in CPP_KEYWORDS


def skip_balanced(tokens: list[tuple[str, int]], i: int, open_t: str,
                  close_t: str) -> int:
    """tokens[i] == open_t; returns the index of the matching close token."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


# ---------------------------------------------------------------------------
# Suppressions, with a trailing-reason requirement and use tracking.
# ---------------------------------------------------------------------------


class Directive(NamedTuple):
    line: int               # 1-based line the directive sits on
    rules: tuple[str, ...]  # rules it suppresses
    has_reason: bool        # trailing reason text after the tag
    is_allow: bool          # allow(...) form (vs iteration-free)
    text: str


class SuppressionMap:
    """Parses `// mono_lint:` directives and tracks which ones fired.

    A directive suppresses matches on its own line and the line directly
    below it.
    """

    def __init__(self, raw_lines: list[str]) -> None:
        self.directives: list[Directive] = []
        self._cover: dict[tuple[int, str], int] = {}
        self.used: set[int] = set()
        for line_number, raw in enumerate(raw_lines, start=1):
            match = SUPPRESS_ALLOW.search(raw)
            if match:
                rules = tuple(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip())
                rest = raw[match.end():]
                self._add(Directive(line_number, rules,
                                    bool(re.search(r"\w", rest)), True,
                                    raw.strip()))
            if SUPPRESS_ITERFREE.search(raw):
                self._add(Directive(line_number, ("ptr-keyed-container",),
                                    True, False, raw.strip()))

    def _add(self, directive: Directive) -> None:
        idx = len(self.directives)
        self.directives.append(directive)
        for rule in directive.rules:
            for covered in (directive.line, directive.line + 1):
                self._cover.setdefault((covered, rule), idx)

    def suppressed(self, line: int, rule: str) -> bool:
        idx = self._cover.get((line, rule))
        if idx is None:
            return False
        self.used.add(idx)
        return True

    def hygiene_violations(self, path: pathlib.Path) -> list[Violation]:
        """Reason-required and unknown-rule checks (every mode)."""
        violations = []
        for directive in self.directives:
            if not directive.is_allow:
                continue
            for rule in directive.rules:
                if rule not in ALL_RULES:
                    violations.append(Violation(
                        path, directive.line, "suppression-hygiene",
                        f"allow({rule}) names an unknown rule; known: "
                        f"{', '.join(ALL_RULES)}", directive.text))
            if not directive.has_reason:
                violations.append(Violation(
                    path, directive.line, "suppression-hygiene",
                    "allow(...) tag without a trailing reason; write "
                    "`// mono_lint: allow(rule) -- <why this is safe>`",
                    directive.text))
        return violations

    def unused_violations(self, path: pathlib.Path) -> list[Violation]:
        """Stale-directive check (tree mode only)."""
        violations = []
        for idx, directive in enumerate(self.directives):
            if idx in self.used:
                continue
            # A directive that also failed hygiene is already reported.
            if directive.is_allow and any(
                    rule not in ALL_RULES for rule in directive.rules):
                continue
            violations.append(Violation(
                path, directive.line, "suppression-hygiene",
                "unused suppression: nothing on this or the next line "
                "triggers "
                f"{', '.join(directive.rules)}; delete the stale tag",
                directive.text))
        return violations


# ---------------------------------------------------------------------------
# Project index: classes, domains, members, accessors (cross-TU rules).
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ClassInfo:
    name: str
    path: pathlib.Path
    line: int
    domain: str | None = None
    sim_owned: bool = False
    # member name -> component class name (includes container-of-component
    # members: `vector<unique_ptr<DiskSchedulerSim>> disks` maps disks ->
    # DiskSchedulerSim; chain resolution skips the subscript).
    members: dict[str, str] = dataclasses.field(default_factory=dict)
    # method name -> component class it returns by reference/pointer
    # (pass-through accessors; calling one is not a mutation, and chain
    # resolution continues through it).
    accessors: dict[str, str] = dataclasses.field(default_factory=dict)
    const_methods: set[str] = dataclasses.field(default_factory=set)


@dataclasses.dataclass
class ProjectIndex:
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)


class _ClassRegion(NamedTuple):
    name: str
    start_line: int
    end_line: int


def _class_regions(tokens: list[tuple[str, int]]) -> list[_ClassRegion]:
    """Class/struct definition regions (name, line range), outermost first."""
    n = len(tokens)
    opens: dict[int, str] = {}
    i = 0
    while i < n:
        tok = tokens[i][0]
        if (tok in ("class", "struct") and i + 1 < n
                and is_ident(tokens[i + 1][0])
                and (i == 0 or tokens[i - 1][0] != "enum")):
            j = i + 2
            while j < n and tokens[j][0] not in (";", "{", "(", ")"):
                j += 1
            if j < n and tokens[j][0] == "{":
                opens[j] = tokens[i + 1][0]
                i += 2
                continue
        i += 1
    regions: list[_ClassRegion] = []
    stack: list[tuple[str, int]] = []  # (name, open line)
    depth_stack: list[int] = []
    depth = 0
    for idx in range(n):
        tok, line = tokens[idx]
        if tok == "{":
            depth += 1
            if idx in opens:
                stack.append((opens[idx], line))
                depth_stack.append(depth)
        elif tok == "}":
            if depth_stack and depth_stack[-1] == depth:
                name, start = stack.pop()
                depth_stack.pop()
                regions.append(_ClassRegion(name, start, line))
            depth -= 1
    return regions


def build_index(paths: Iterable[pathlib.Path]) -> ProjectIndex:
    """Two-pass symbol index over `paths` (headers and sources)."""
    filedata = []
    names: set[str] = set()
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        raw_lines = text.splitlines()
        code_lines = strip_lines(raw_lines)
        regions = _class_regions(tokenize(code_lines))
        names.update(region.name for region in regions)
        filedata.append((path, raw_lines, code_lines, regions))

    index = ProjectIndex()
    for path, _, _, regions in filedata:
        for region in regions:
            if region.name not in index.classes:
                index.classes[region.name] = ClassInfo(
                    region.name, path, region.start_line)

    if not names:
        return index
    name_alt = "|".join(sorted(names, key=len, reverse=True))
    member_re = re.compile(
        rf"\b({name_alt})\b[^();]*?\b([A-Za-z_]\w*)\s*(?:;|=|\{{)")
    accessor_re = re.compile(rf"\b({name_alt})\s*[&*]\s*([A-Za-z_]\w*)\s*\(")
    const_re = re.compile(r"\b([A-Za-z_]\w*)\s*\([^;{}()]*\)\s*const\b")

    for path, raw_lines, code_lines, regions in filedata:
        # Innermost-region attribution: larger regions first so nested
        # structs overwrite their enclosing class on shared lines.
        line_class: dict[int, str] = {}
        for region in sorted(regions,
                             key=lambda r: r.end_line - r.start_line,
                             reverse=True):
            for line in range(region.start_line, region.end_line + 1):
                line_class[line] = region.name
        for line_number, code in enumerate(code_lines, start=1):
            cls = line_class.get(line_number)
            if cls is None:
                continue
            info = index.classes[cls]
            match = DOMAIN_DECL.search(raw_lines[line_number - 1])
            if match:
                info.domain = match.group(1)
            if SIM_OWNED_DECL.search(code):
                info.sim_owned = True
            for m in accessor_re.finditer(code):
                info.accessors[m.group(2)] = m.group(1)
            for m in member_re.finditer(code):
                if m.group(2) not in info.accessors:
                    info.members[m.group(2)] = m.group(1)
            for m in const_re.finditer(code):
                info.const_methods.add(m.group(1))
    return index


# ---------------------------------------------------------------------------
# Scope tracking: which class/method encloses each token.
# ---------------------------------------------------------------------------

# Tokens that, immediately before `X` in `X::y(`, mean the mention is a call
# or a type usage rather than an out-of-line method definition.
_DEF_PREV_EXCLUDE = frozenset({
    "return", "(", ",", "=", "::", ".", "->", "!", "<", "+", "-", "/", "?",
    ":", "case", "|", "^",
})


def compute_scopes(tokens: list[tuple[str, int]],
                   index: ProjectIndex) -> list[tuple[str | None, str | None]]:
    """Per token: (enclosing class name, enclosing method name) or Nones."""
    n = len(tokens)
    opens: dict[int, tuple[str, str, str | None]] = {}  # idx -> (kind, cls, m)

    i = 0
    while i < n:
        tok = tokens[i][0]
        if (tok in ("class", "struct") and i + 1 < n
                and is_ident(tokens[i + 1][0])
                and (i == 0 or tokens[i - 1][0] != "enum")):
            j = i + 2
            while j < n and tokens[j][0] not in (";", "{", "(", ")"):
                j += 1
            if j < n and tokens[j][0] == "{":
                opens[j] = ("class", tokens[i + 1][0], None)
                i += 2
                continue
        i += 1

    # Out-of-line definitions: Class :: [~] Method ( ... ) [quals] {
    i = 1
    while i < n - 3:
        if (tokens[i + 1][0] == "::" and is_ident(tokens[i][0])
                and tokens[i][0] in index.classes
                and tokens[i - 1][0] not in _DEF_PREV_EXCLUDE):
            k = i + 2
            if k < n and tokens[k][0] == "~":
                k += 1
            if k + 1 < n and is_ident(tokens[k][0]) and tokens[k + 1][0] == "(":
                method = tokens[k][0]
                close = skip_balanced(tokens, k + 1, "(", ")")
                j = close + 1
                body = None
                guard = 0
                while j < n and guard < 400:
                    tj = tokens[j][0]
                    if tj == "{":
                        body = j
                        break
                    if tj in (";", "}"):
                        break
                    if tj == "(":
                        j = skip_balanced(tokens, j, "(", ")")
                    j += 1
                    guard += 1
                if body is not None and body not in opens:
                    opens[body] = ("method", tokens[i][0], method)
                i = close
                continue
        i += 1

    encl: list[tuple[str | None, str | None]] = [(None, None)] * n
    stack: list[tuple[str | None, str | None]] = []
    cur: tuple[str | None, str | None] = (None, None)
    for idx in range(n):
        tok = tokens[idx][0]
        if tok == "{":
            stack.append(cur)
            if idx in opens:
                kind, cls, method = opens[idx]
                cur = (cls, None) if kind == "class" else (cls, method)
        encl[idx] = cur
        if tok == "}" and stack:
            cur = stack.pop()
    return encl


# ---------------------------------------------------------------------------
# Chain resolution.
# ---------------------------------------------------------------------------


class _Terminal(NamedTuple):
    receiver: str        # component class of the final receiver
    member: str          # method or field name
    is_call: bool
    line: int
    args_open: int | None    # token index of '(' for calls
    args_close: int | None
    after: int               # token index just past the member (field case)


def _skip_subscripts(tokens: list[tuple[str, int]], j: int) -> int:
    while j < len(tokens) and tokens[j][0] == "[":
        j = skip_balanced(tokens, j, "[", "]") + 1
    return j


def resolve_chain(tokens: list[tuple[str, int]], i: int, ctype: str,
                  index: ProjectIndex) -> _Terminal | None:
    """Resolves `x->a(...).b...` starting at identifier token i of type ctype.

    Pass-through accessors (methods returning a component by ref/ptr) and
    component-typed fields continue the chain; the first other member access
    is the terminal.
    """
    n = len(tokens)
    j = _skip_subscripts(tokens, i + 1)
    for _ in range(24):
        if j >= n or tokens[j][0] not in (".", "->"):
            return None
        if j + 1 >= n or not is_ident(tokens[j + 1][0]):
            return None
        name = tokens[j + 1][0]
        line = tokens[j + 1][1]
        info = index.classes[ctype]
        if j + 2 < n and tokens[j + 2][0] == "(":
            close = skip_balanced(tokens, j + 2, "(", ")")
            after = tokens[close + 1][0] if close + 1 < n else ";"
            if name in info.accessors and after in (".", "->", "["):
                ctype = info.accessors[name]
                if ctype not in index.classes:
                    return None
                j = _skip_subscripts(tokens, close + 1)
                continue
            if name in CONTAINER_PASSTHROUGH and after in (".", "->", "["):
                # back()/front()/at() on a container member yield the element
                # type, which is what the member already indexed as.
                j = _skip_subscripts(tokens, close + 1)
                continue
            if name in CONTAINER_METHODS:
                return None  # Container op, not a component method.
            return _Terminal(ctype, name, True, line, j + 2, close, close + 1)
        after_tok = tokens[j + 2][0] if j + 2 < n else ";"
        if name in info.members and after_tok in (".", "->", "["):
            ctype = info.members[name]
            if ctype not in index.classes:
                return None
            j = _skip_subscripts(tokens, j + 2)
            continue
        return _Terminal(ctype, name, False, line, None, None, j + 2)
    return None


# ---------------------------------------------------------------------------
# Cross-TU pass: escaping-capture, domain-ownership, lock-across-schedule.
# ---------------------------------------------------------------------------

_LAMBDA_PREV = frozenset({"(", ",", "{", ";", "=", "return"})


def _split_captures(group_tokens: list[str]) -> list[list[str]]:
    groups: list[list[str]] = []
    cur: list[str] = []
    depth = 0
    for tok in group_tokens:
        if tok in ("(", "{", "["):
            depth += 1
        elif tok in (")", "}", "]"):
            depth -= 1
        if tok == "," and depth == 0:
            groups.append(cur)
            cur = []
        else:
            cur.append(tok)
    if cur:
        groups.append(cur)
    return groups


def _lambda_capture_violations(
    path: pathlib.Path,
    raw_lines: list[str],
    tokens: list[tuple[str, int]],
    start: int,
    end: int,
    sim_owned: bool,
    encl_cls: str | None,
    smap: SuppressionMap,
) -> list[Violation]:
    """Flags escaping captures in every lambda between token start..end."""
    violations: list[Violation] = []
    k = start
    n = len(tokens)
    while k <= end and k < n:
        tok, line = tokens[k]
        if tok == "[" and k > 0 and tokens[k - 1][0] in _LAMBDA_PREV:
            close = skip_balanced(tokens, k, "[", "]")
            after = tokens[close + 1][0] if close + 1 < n else ""
            if after not in ("(", "{", "mutable", "noexcept", "->"):
                k += 1
                continue
            problems: list[str] = []
            for group in _split_captures(
                    [t for t, _ in tokens[k + 1:close]]):
                if not group:
                    continue
                if group == ["&"]:
                    problems.append(
                        "[&] default capture is by reference")
                elif group[0] == "&":
                    problems.append(
                        f"`&{group[1] if len(group) > 1 else ''}` captures "
                        "by reference")
                elif group == ["this"]:
                    if not sim_owned:
                        owner = encl_cls or "this context"
                        problems.append(
                            f"`this` captured but {owner} is not marked "
                            "MONO_SIM_OWNED (object may die before the "
                            "event fires)")
                elif "=" in group:
                    eq = group.index("=")
                    if "&" in group[eq + 1:]:
                        problems.append(
                            f"init-capture `{group[0]}` takes an address")
            if problems and not smap.suppressed(line, "escaping-capture"):
                for problem in problems:
                    violations.append(Violation(
                        path, line, "escaping-capture",
                        f"{problem}; " + TOKEN_RULES["escaping-capture"],
                        raw_lines[line - 1].strip()))
            k = close + 1
            continue
        k += 1
    return violations


def _collect_local_types(tokens: list[tuple[str, int]],
                         index: ProjectIndex) -> dict[str, str]:
    """File-wide `KnownClass [&*] name = ...` local declarations."""
    local_types: dict[str, str] = {}
    n = len(tokens)
    for i in range(n - 3):
        t0 = tokens[i][0]
        if t0 not in index.classes:
            continue
        if i > 0 and tokens[i - 1][0] in (".", "->", "::", "class", "struct",
                                          "enum", "friend", "<"):
            continue
        t1, t2, t3 = tokens[i + 1][0], tokens[i + 2][0], tokens[i + 3][0]
        if t1 in ("&", "*") and is_ident(t2) and t3 == "=":
            local_types[t2] = t0
        elif is_ident(t1) and t2 == "=":
            local_types[t1] = t0
    return local_types


def analyze_cross_tu(
    path: pathlib.Path,
    raw_lines: list[str],
    tokens: list[tuple[str, int]],
    rules: Iterable[str],
    index: ProjectIndex,
    smap: SuppressionMap,
) -> list[Violation]:
    rules = set(rules)
    check_escape = "escaping-capture" in rules
    check_domain = "domain-ownership" in rules
    check_lock = "lock-across-schedule" in rules
    if not (check_escape or check_domain or check_lock):
        return []

    violations: list[Violation] = []
    encl = compute_scopes(tokens, index)
    local_types = _collect_local_types(tokens, index)
    n = len(tokens)
    depth = 0
    lock_depths: list[int] = []
    i = 0

    def flag_lock(line: int) -> None:
        if not smap.suppressed(line, "lock-across-schedule"):
            violations.append(Violation(
                path, line, "lock-across-schedule",
                TOKEN_RULES["lock-across-schedule"],
                raw_lines[line - 1].strip()))

    while i < n:
        tok, line = tokens[i]
        if tok == "{":
            depth += 1
            i += 1
            continue
        if tok == "}":
            depth -= 1
            while lock_depths and lock_depths[-1] > depth:
                lock_depths.pop()
            i += 1
            continue
        if (check_lock and tok == "MutexLock" and i + 2 < n
                and is_ident(tokens[i + 1][0]) and tokens[i + 2][0] == "("):
            lock_depths.append(depth)
            i += 3
            continue
        if (check_lock and lock_depths
                and tok in ENGINE_BLOCKING_FUNCTORS and i + 1 < n
                and tokens[i + 1][0] == "("):
            flag_lock(line)
            i += 1
            continue
        if tok in BARE_DEFERRING and i + 1 < n and tokens[i + 1][0] == "(":
            close = skip_balanced(tokens, i + 1, "(", ")")
            cls = encl[i][0]
            info = index.classes.get(cls) if cls else None
            if check_escape:
                violations.extend(_lambda_capture_violations(
                    path, raw_lines, tokens, i + 2, close,
                    bool(info and info.sim_owned), cls, smap))
            if check_lock and lock_depths:
                flag_lock(line)
            i += 1  # Keep scanning inside the argument list.
            continue
        if is_ident(tok) and (i == 0
                              or tokens[i - 1][0] not in (".", "->", "::")):
            ctype = local_types.get(tok)
            if ctype is None:
                cls = encl[i][0]
                cinfo = index.classes.get(cls) if cls else None
                if cinfo:
                    ctype = cinfo.members.get(tok)
            if ctype and ctype in index.classes:
                terminal = resolve_chain(tokens, i, ctype, index)
                if terminal:
                    violations.extend(_handle_terminal(
                        path, raw_lines, tokens, encl, index, smap, terminal,
                        i, check_escape, check_domain, check_lock,
                        lock_depths, flag_lock))
                    # Advance past the member token; argument lists are still
                    # scanned (nested chains and lambdas live there).
                    i = (terminal.args_open or terminal.after) - 1
        i += 1
    # Nested deferring calls scan overlapping argument spans (the outer span
    # contains the inner call's lambdas); keep the first report of each.
    return list(dict.fromkeys(violations))


def _handle_terminal(path, raw_lines, tokens, encl, index, smap, terminal,
                     start, check_escape, check_domain, check_lock,
                     lock_depths, flag_lock) -> list[Violation]:
    violations: list[Violation] = []
    rinfo = index.classes[terminal.receiver]
    encl_cls, encl_method = encl[start]
    einfo = index.classes.get(encl_cls) if encl_cls else None
    pair = (terminal.receiver, terminal.member)

    if terminal.is_call and pair in DEFERRING_METHODS:
        if check_escape:
            violations.extend(_lambda_capture_violations(
                path, raw_lines, tokens, terminal.args_open + 1,
                terminal.args_close, bool(einfo and einfo.sim_owned),
                encl_cls, smap))
        if check_lock and lock_depths:
            flag_lock(terminal.line)

    if (check_domain and einfo and einfo.domain and rinfo.domain
            and einfo.domain != rinfo.domain
            and encl_method != encl_cls):  # ctors/dtors wire the graph
        if terminal.is_call:
            if (terminal.member not in rinfo.const_methods
                    and terminal.member not in rinfo.accessors
                    and pair not in SANCTIONED_CHANNELS
                    and not smap.suppressed(terminal.line,
                                            "domain-ownership")):
                violations.append(Violation(
                    path, terminal.line, "domain-ownership",
                    f"{encl_cls} (domain \"{einfo.domain}\") calls "
                    f"{terminal.receiver}::{terminal.member} (domain "
                    f"\"{rinfo.domain}\"); "
                    + TOKEN_RULES["domain-ownership"],
                    raw_lines[terminal.line - 1].strip()))
        else:
            after = (tokens[terminal.after][0]
                     if terminal.after < len(tokens) else ";")
            if (after in ASSIGN_OPS
                    and not smap.suppressed(terminal.line,
                                            "domain-ownership")):
                violations.append(Violation(
                    path, terminal.line, "domain-ownership",
                    f"{encl_cls} (domain \"{einfo.domain}\") assigns to "
                    f"{terminal.receiver}::{terminal.member} (domain "
                    f"\"{rinfo.domain}\"); "
                    + TOKEN_RULES["domain-ownership"],
                    raw_lines[terminal.line - 1].strip()))
    return violations


# ---------------------------------------------------------------------------
# Single-file checks (regex rules, raw-unit-double, include-layering).
# ---------------------------------------------------------------------------


def layer_of(path: pathlib.Path) -> str | None:
    """The `src/<dir>` layer `path` belongs to, or None outside src/."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1):
        if parts[i] == "src":
            layer = f"src/{parts[i + 1]}"
            if layer in LAYER_DEPS:
                return layer
    return None


def check_raw_unit_double(
    path: pathlib.Path,
    tokens: list[tuple[str, int]],
    raw_lines: list[str],
    smap: SuppressionMap,
) -> list[Violation]:
    """Token pass: `double`/`int64_t` declarations with unit-bearing names."""
    violations: list[Violation] = []
    for i, (token, _) in enumerate(tokens):
        if token not in ("double", "int64_t") or i + 2 > len(tokens) - 1:
            continue
        name, name_line = tokens[i + 1]
        follower = tokens[i + 2][0]
        if not re.match(r"[A-Za-z_]", name) or follower not in DECLARATION_FOLLOWERS:
            continue
        ident = name.lower()
        if not UNIT_NAME.search(ident) or UNIT_NAME_EXEMPT.search(ident):
            continue
        if smap.suppressed(name_line, "raw-unit-double"):
            continue
        violations.append(
            Violation(path, name_line, "raw-unit-double",
                      f"`{token} {name}`: " + TOKEN_RULES["raw-unit-double"],
                      raw_lines[name_line - 1].strip()))
    return violations


def check_include_layering(
    path: pathlib.Path,
    raw_lines: list[str],
    layer: str,
    smap: SuppressionMap,
) -> list[Violation]:
    """#include edges must stay inside the declared layer DAG."""
    violations: list[Violation] = []
    allowed = {layer, *LAYER_DEPS[layer]}
    for line_number, raw in enumerate(raw_lines, start=1):
        match = INCLUDE_DIRECTIVE.match(raw)
        if not match:
            continue
        include_layer = "/".join(match.group(1).split("/")[:2])
        if include_layer in allowed or include_layer not in LAYER_DEPS:
            continue
        if smap.suppressed(line_number, "include-layering"):
            continue
        violations.append(
            Violation(path, line_number, "include-layering",
                      f"{layer} may not include {include_layer} "
                      f"(allowed: {', '.join(sorted(allowed))})",
                      raw.strip()))
    return violations


class LintResult(NamedTuple):
    violations: list[Violation]
    smap: SuppressionMap


def _lint_file_ex(
    path: pathlib.Path,
    rules: Iterable[str],
    layer: str | None = None,
    index: ProjectIndex | None = None,
    stats: dict | None = None,
) -> LintResult:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        raise SystemExit(f"mono_lint: cannot read {path}: {err}")
    rules = tuple(rules)
    raw_lines = text.splitlines()
    code_lines = strip_lines(raw_lines)
    smap = SuppressionMap(raw_lines)
    tokens = tokenize(code_lines)

    def tick(phase: str, started: float) -> None:
        if stats is not None:
            phases = stats.setdefault("phases", {})
            phases[phase] = phases.get(phase, 0.0) + (
                time.perf_counter() - started)

    violations: list[Violation] = list(smap.hygiene_violations(path))

    for rule in rules:
        if rule not in RULES:
            continue
        started = time.perf_counter()
        for line_number, (code, raw) in enumerate(
                zip(code_lines, raw_lines), start=1):
            if smap._cover.get((line_number, rule)) is not None:
                if any(pattern.search(code) for pattern, _ in RULES[rule]):
                    smap.suppressed(line_number, rule)
                continue
            for pattern, message in RULES[rule]:
                if pattern.search(code):
                    violations.append(
                        Violation(path, line_number, rule, message,
                                  raw.strip()))
                    break  # One report per rule per line.
        tick(rule, started)

    if "raw-unit-double" in rules and path.suffix in (".h", ".hpp"):
        started = time.perf_counter()
        violations.extend(check_raw_unit_double(path, tokens, raw_lines, smap))
        tick("raw-unit-double", started)
    if "include-layering" in rules:
        file_layer = layer if layer is not None else layer_of(path)
        if file_layer is not None:
            started = time.perf_counter()
            violations.extend(
                check_include_layering(path, raw_lines, file_layer, smap))
            tick("include-layering", started)

    if any(rule in rules for rule in
           CROSS_TU_RULES + ("lock-across-schedule",)):
        if index is None:
            index = build_index([path])
        started = time.perf_counter()
        violations.extend(
            analyze_cross_tu(path, raw_lines, tokens, rules, index, smap))
        tick("cross-tu", started)

    return LintResult(violations, smap)


def lint_file(
    path: pathlib.Path,
    rules: Iterable[str],
    layer: str | None = None,
    index: ProjectIndex | None = None,
) -> list[Violation]:
    return _lint_file_ex(path, rules, layer=layer, index=index).violations


def iter_sources(root: pathlib.Path, directory: str) -> Iterable[pathlib.Path]:
    base = root / directory
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def lint_tree(root: pathlib.Path, stats: dict | None = None) -> list[Violation]:
    violations: list[Violation] = []

    started = time.perf_counter()
    src_files = [p for d in sorted(DIR_RULES) for p in iter_sources(root, d)]
    index = build_index(src_files)
    if stats is not None:
        stats.setdefault("phases", {})["index"] = (
            time.perf_counter() - started)
        stats["files"] = len(src_files)

    # unmapped-dir: every directory under src/ must have an explicit rule set.
    src_dir = root / "src"
    if src_dir.is_dir():
        for child in sorted(src_dir.iterdir()):
            if child.is_dir() and f"src/{child.name}" not in DIR_RULES:
                violations.append(Violation(
                    child, 0, "unmapped-dir",
                    f"src/{child.name} is not in mono_lint's DIR_RULES / "
                    "layer DAG; add it with an explicit rule set",
                    ""))

    # undeclared-domain: every rostered component must carry MONO_DOMAIN.
    for name in COMPONENT_ROSTER:
        info = index.classes.get(name)
        if info is None:
            violations.append(Violation(
                src_dir, 0, "undeclared-domain",
                f"component class {name} (COMPONENT_ROSTER) was not found "
                "by the indexer", ""))
        elif info.domain is None:
            violations.append(Violation(
                info.path, info.line, "undeclared-domain",
                f"{name} must declare MONO_DOMAIN(\"machine\"|\"fabric\"|"
                "\"driver\"|\"storage\") (src/common/domain.h)", ""))

    for directory in sorted(DIR_RULES):
        for path in iter_sources(root, directory):
            result = _lint_file_ex(path, DIR_RULES[directory], index=index,
                                   stats=stats)
            violations.extend(result.violations)
            violations.extend(result.smap.unused_violations(path))
    for directory in BENCH_DIRS:
        for path in iter_sources(root, directory):
            result = _lint_file_ex(path, BENCH_RULES, index=index,
                                   stats=stats)
            violations.extend(result.violations)
            violations.extend(result.smap.unused_violations(path))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, type=pathlib.Path,
                        help="repository root")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated rule subset (explicit files only)")
    parser.add_argument("--layer", default=None,
                        help="treat explicit files as members of this layer "
                             "(include-layering; e.g. src/simcore)")
    parser.add_argument("--stats-json", default=None, type=pathlib.Path,
                        help="write per-rule timing and finding counts here")
    parser.add_argument("--budget-seconds", default=None, type=float,
                        help="fail if the full run exceeds this wall-clock "
                             "budget")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="lint these files (full rule set) instead of the tree")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for rule in rules:
        if rule not in ALL_RULES:
            parser.error(f"unknown rule {rule!r}; known: {', '.join(ALL_RULES)}")
    if args.layer is not None and args.layer not in LAYER_DEPS:
        parser.error(f"unknown layer {args.layer!r}; "
                     f"known: {', '.join(LAYER_DEPS)}")

    stats: dict = {"phases": {}}
    run_started = time.perf_counter()
    if args.files:
        index = build_index(args.files)
        violations = []
        for path in args.files:
            violations.extend(
                lint_file(path, rules, layer=args.layer, index=index))
    else:
        violations = lint_tree(args.root, stats=stats)
    elapsed = time.perf_counter() - run_started

    violations.sort(key=lambda v: (str(v.path), v.line_number, v.rule))
    for v in violations:
        try:
            shown = v.path.resolve().relative_to(args.root.resolve())
        except ValueError:
            shown = v.path
        print(f"{shown}:{v.line_number}: [{v.rule}] {v.message}")
        if v.line:
            print(f"    {v.line}")

    if args.stats_json is not None:
        findings: dict[str, int] = {
            rule: 0 for rule in ALL_RULES + TREE_RULES}
        for v in violations:
            findings[v.rule] = findings.get(v.rule, 0) + 1
        payload = {
            "total_seconds": round(elapsed, 4),
            "files": stats.get("files", len(args.files)),
            "budget_seconds": args.budget_seconds,
            # Phase seconds: one entry per regex rule plus "index",
            # "raw-unit-double", "include-layering", and "cross-tu" (the
            # shared pass behind escaping-capture / domain-ownership /
            # lock-across-schedule).
            "phase_seconds": {
                k: round(s, 4) for k, s in sorted(stats["phases"].items())},
            "findings": findings,
        }
        args.stats_json.write_text(json.dumps(payload, indent=2) + "\n",
                                   encoding="utf-8")

    status = 0
    if violations:
        print(f"mono_lint: {len(violations)} violation(s)", file=sys.stderr)
        status = 1
    if args.budget_seconds is not None and elapsed > args.budget_seconds:
        print(f"mono_lint: run took {elapsed:.2f}s, over the "
              f"{args.budget_seconds:.2f}s budget", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
