#!/usr/bin/env python3
"""mono_lint: repo-specific determinism static analysis.

The cluster simulator's contract is "same seed => same schedule => same
figures" (DESIGN.md, "Determinism contract & static enforcement"). This linter
enforces the source-level rules that contract rests on, over the simulation
directories (src/simcore, src/cluster, src/monotask, src/multitask, src/model,
src/framework, src/storage, src/workloads):

  wall-clock      No std::chrono::{system,steady,high_resolution}_clock,
                  time(), gettimeofday(), or clock_gettime() in simulation
                  code. Virtual time comes from Simulation::now() only. The
                  real-time engine (src/engine, src/api) legitimately measures
                  wall time and is out of scope.

  entropy         No std::random_device, rand()/srand(), std::mt19937 or other
                  <random> engines/distributions (their outputs differ across
                  standard libraries), or std::random_shuffle. monoutil::Rng
                  (SplitMix64-seeded xoshiro256**) is the only entropy source.

  ptr-keyed-container
                  No unordered_map/unordered_set keyed by a pointer in
                  simulation code: iteration order follows the heap layout, so
                  any schedule decision derived from it silently depends on
                  allocator behaviour. Flagged at the container declaration.
                  If every access is a point lookup (find/emplace/erase, never
                  iteration), tag the declaration `// mono_lint: iteration-free`
                  -- but prefer keying by a stable id.

  address-ordered No std::map/std::set keyed by a pointer and no
                  std::less<T*>/std::greater<T*> comparators: address order is
                  allocation order, which is not reproducible.

  std-function-hot-path
                  (src/simcore only) No std::function in the event kernel:
                  capturing beyond its small-buffer bound heap-allocates on
                  the schedule/fire path, which the pooled kernel exists to
                  avoid. Take a template callable and wrap it in
                  InlineCallback. Config-time uses (capacity models, setup
                  plumbing) tag `// mono_lint: allow(std-function-hot-path)`
                  with a comment saying why they are off the hot path.

  raw-unit-double (token-aware; simulation headers only) No new `double` or
                  `int64_t` parameter, member, or accessor whose name reads
                  like a time/rate/byte quantity (`latency`, `delay`,
                  `timeout`, `duration`, `*_time`, `*_bytes`, `bandwidth`,
                  `rate`, ...) in a simulation-dir API. Those quantities are
                  strong types now (monoutil::SimTime / Bytes /
                  BytesPerSecond, src/common/units.h); a raw double can be
                  swapped with any other double silently. Names that spell
                  their unit (`*_seconds`) and dimensionless shapes
                  (`*_fraction`, `*_ratio`, `*_scale`, `*_factor`) stay raw
                  by convention. Deliberately unit-agnostic APIs (FluidServer
                  work rates, RateTrace) tag
                  `// mono_lint: allow(raw-unit-double)` with the reason.

  include-layering
                  (token-aware; all of src/) #include edges must follow the
                  declared layer DAG (LAYER_DEPS below). In particular the
                  simulation stack must never include src/engine or src/api:
                  the simulator is deterministic virtual time, the engine is
                  wall clock, and an include edge from sim to engine would
                  let wall-clock types leak into schedule decisions.

Benchmark sources (bench/) are additionally checked against the entropy rule
only: benches measure wall time legitimately, but must seed exclusively through
monoutil::Rng so the run digest recorded in BENCH_*.json is same-schedule.

Suppressions, on the flagged line or the line directly above it:
  // mono_lint: iteration-free        (ptr-keyed-container only)
  // mono_lint: allow(<rule-name>)    (any rule; say why in a comment)

Exit status: 0 when clean, 1 when violations were found, 2 on usage errors.

Usage:
  mono_lint.py --root <repo-root>                # lint the tree
  mono_lint.py --root <repo-root> file.cc ...    # lint specific files with
                                                 # the full rule set (fixtures)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, NamedTuple

# Rule name -> list of (compiled regex, human message).
RULES: dict[str, list[tuple[re.Pattern[str], str]]] = {
    "wall-clock": [
        (
            re.compile(
                r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
            ),
            "wall-clock source in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
            "wall-clock syscall in simulation code; use Simulation::now()",
        ),
        (
            re.compile(r"(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
            "time() in simulation code; use Simulation::now()",
        ),
    ],
    "entropy": [
        (
            re.compile(r"std::random_device|\brandom_device\b"),
            "std::random_device is non-reproducible; seed a monoutil::Rng",
        ),
        (
            re.compile(r"(?<![\w:.>])s?rand\s*\("),
            "rand()/srand() is a hidden global entropy source; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\w+|knuth_b)\b"
            ),
            "<random> engines vary across platforms; use monoutil::Rng",
        ),
        (
            re.compile(
                r"\b(uniform_int_distribution|uniform_real_distribution|"
                r"normal_distribution|exponential_distribution|"
                r"bernoulli_distribution|poisson_distribution)\b"
            ),
            "<random> distributions vary across standard libraries; "
            "use monoutil::Rng's distribution helpers",
        ),
        (
            re.compile(r"\brandom_shuffle\s*\("),
            "std::random_shuffle uses unspecified entropy; "
            "shuffle with monoutil::Rng::NextBelow",
        ),
    ],
    "ptr-keyed-container": [
        (
            re.compile(r"\bunordered_(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "pointer-keyed unordered container: iteration order is heap order; "
            "key by a stable id, or tag `// mono_lint: iteration-free` if it is "
            "never iterated",
        ),
    ],
    "address-ordered": [
        (
            re.compile(r"\bstd::(map|set)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "std::map/std::set keyed by a pointer orders by address, which is "
            "allocation order; key by a stable id",
        ),
        (
            re.compile(r"\bstd::(less|greater)\s*<\s*(const\s+)?[\w:]+\s*\*"),
            "address-ordered comparator; compare stable ids instead",
        ),
    ],
    "std-function-hot-path": [
        (
            re.compile(r"\bstd::function\s*<"),
            "std::function in the event kernel heap-allocates per oversize "
            "capture on the schedule/fire path; take a template callable and "
            "wrap it in InlineCallback, or tag a config-time use "
            "`// mono_lint: allow(std-function-hot-path)`",
        ),
    ],
}

# Token-aware rules (implemented as passes over the token stream rather than
# line regexes) and their messages.
TOKEN_RULES = {
    "raw-unit-double": (
        "raw double/int64_t carries a unit-bearing name in a simulation API; "
        "use monoutil::SimTime / Bytes / BytesPerSecond (src/common/units.h), "
        "spell the unit in the name (*_seconds), or tag "
        "`// mono_lint: allow(raw-unit-double)` with the reason"
    ),
    "include-layering": (
        "include edge violates the layer DAG"
    ),
}

ALL_RULES = tuple(RULES) + tuple(TOKEN_RULES)

# ---------------------------------------------------------------------------
# raw-unit-double: name classification.
# ---------------------------------------------------------------------------

# A declaration name that implies a unit-bearing quantity. Matched against the
# lower-cased identifier.
UNIT_NAME = re.compile(
    r"(^|_)bytes($|_)|bytes_per_second|"
    r"(^|_)bandwidth$|(^|_)rate$|_bps$|"
    r"latency|(^|_)delay$|deadline|timeout|duration|(^|_)interval$|(^|_)time$"
)

# Names that are allowed to stay raw: the unit is spelled out (`*_seconds` is
# the sanctioned raw boundary for work amounts and telemetry aggregates), or
# the quantity is dimensionless.
UNIT_NAME_EXEMPT = re.compile(
    r"seconds|_scale$|(^|_)fraction(s)?$|(^|_)ratio(s)?$|(^|_)factor(s)?$|_cv$")

# Tokens that may follow `double <name>` in a parameter, member, or accessor
# declaration. Anything else (e.g. `>` in a template argument) is not a
# declaration of a named quantity.
DECLARATION_FOLLOWERS = frozenset({",", ";", "=", ")", "{", "("})

TOKEN_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|::|[0-9][\w.+-]*|\S")

# ---------------------------------------------------------------------------
# include-layering: the declared layer DAG.
# ---------------------------------------------------------------------------

# Layer -> layers it may #include (besides itself and non-src system headers).
# src/engine and src/api are the wall-clock world; nothing in the simulation
# stack may depend on them.
LAYER_DEPS: dict[str, tuple[str, ...]] = {
    "src/common": (),
    "src/simcore": ("src/common",),
    "src/storage": ("src/common",),
    "src/cluster": ("src/common", "src/simcore"),
    "src/framework": ("src/common", "src/simcore", "src/storage", "src/cluster"),
    "src/model": ("src/common", "src/simcore", "src/cluster", "src/framework"),
    "src/monotask": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/multitask": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/workloads": (
        "src/common", "src/simcore", "src/storage", "src/cluster", "src/framework"),
    "src/engine": ("src/common",),
    "src/api": ("src/common", "src/engine", "src/model", "src/cluster",
                "src/framework", "src/simcore", "src/storage"),
}

INCLUDE_DIRECTIVE = re.compile(r'^\s*#\s*include\s*"(src/[\w./-]+)"')

# Directories linted with the full rule set, relative to --root.
SIM_DIRS = (
    "src/simcore",
    "src/cluster",
    "src/monotask",
    "src/multitask",
    "src/model",
    "src/framework",
    "src/storage",
    "src/workloads",
)

# The hot-path callback rule applies only to the event kernel itself; in the
# layers above it std::function off the event hot path is legitimate.
HOT_PATH_DIRS = ("src/simcore",)
SIM_RULES = tuple(r for r in RULES if r != "std-function-hot-path") + tuple(TOKEN_RULES)

# Directories outside the simulation stack that still participate in the layer
# DAG: only the include-layering rule applies there (the engine and api layers
# legitimately use wall clock, std::function, and raw doubles).
LAYER_ONLY_DIRS = ("src/common", "src/engine", "src/api")

# Directories linted with a reduced rule set (wall time is legitimate there,
# entropy is not).
BENCH_DIRS = ("bench",)
BENCH_RULES = ("entropy",)

SOURCE_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

SUPPRESS_ALLOW = re.compile(r"//\s*mono_lint:\s*allow\(([\w,\- ]+)\)")
SUPPRESS_ITERFREE = re.compile(r"//\s*mono_lint:\s*iteration-free\b")


class Violation(NamedTuple):
    path: pathlib.Path
    line_number: int  # 1-based
    rule: str
    message: str
    line: str


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Returns `line` with comments and string/char literal contents blanked.

    Keeps column positions stable (replaced with spaces). `in_block_comment`
    carries /* ... */ state across lines.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                i = n
            else:
                out.append(" " * (end + 2 - i))
                i = end + 2
                in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            out.append(" " * (n - i))
            i = n
        elif ch == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
        elif ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out), in_block_comment


def suppressions(raw_line: str) -> set[str]:
    """Rules suppressed by directives on `raw_line` (comment text included)."""
    allowed: set[str] = set()
    match = SUPPRESS_ALLOW.search(raw_line)
    if match:
        allowed.update(part.strip() for part in match.group(1).split(","))
    if SUPPRESS_ITERFREE.search(raw_line):
        allowed.add("ptr-keyed-container")
    return allowed


def tokenize(code_lines: list[str]) -> list[tuple[str, int]]:
    """Flattens comment/string-stripped lines into (token, 1-based line)."""
    tokens: list[tuple[str, int]] = []
    for line_number, code in enumerate(code_lines, start=1):
        for match in TOKEN_PATTERN.finditer(code):
            tokens.append((match.group(0), line_number))
    return tokens


def layer_of(path: pathlib.Path) -> str | None:
    """The `src/<dir>` layer `path` belongs to, or None outside src/."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1):
        if parts[i] == "src":
            layer = f"src/{parts[i + 1]}"
            if layer in LAYER_DEPS:
                return layer
    return None


def check_raw_unit_double(
    path: pathlib.Path,
    code_lines: list[str],
    raw_lines: list[str],
    suppressed: list[set[str]],
) -> list[Violation]:
    """Token pass: `double`/`int64_t` declarations with unit-bearing names."""
    violations: list[Violation] = []
    tokens = tokenize(code_lines)
    for i, (token, _) in enumerate(tokens):
        if token not in ("double", "int64_t") or i + 2 > len(tokens) - 1:
            continue
        name, name_line = tokens[i + 1]
        follower = tokens[i + 2][0]
        if not re.match(r"[A-Za-z_]", name) or follower not in DECLARATION_FOLLOWERS:
            continue
        ident = name.lower()
        if not UNIT_NAME.search(ident) or UNIT_NAME_EXEMPT.search(ident):
            continue
        if "raw-unit-double" in suppressed[name_line - 1]:
            continue
        violations.append(
            Violation(path, name_line, "raw-unit-double",
                      f"`{token} {name}`: " + TOKEN_RULES["raw-unit-double"],
                      raw_lines[name_line - 1].strip()))
    return violations


def check_include_layering(
    path: pathlib.Path,
    raw_lines: list[str],
    layer: str,
    suppressed: list[set[str]],
) -> list[Violation]:
    """#include edges must stay inside the declared layer DAG."""
    violations: list[Violation] = []
    allowed = {layer, *LAYER_DEPS[layer]}
    for line_number, raw in enumerate(raw_lines, start=1):
        match = INCLUDE_DIRECTIVE.match(raw)
        if not match:
            continue
        include_layer = "/".join(match.group(1).split("/")[:2])
        if include_layer in allowed or include_layer not in LAYER_DEPS:
            continue
        if "include-layering" in suppressed[line_number - 1]:
            continue
        violations.append(
            Violation(path, line_number, "include-layering",
                      f"{layer} may not include {include_layer} "
                      f"(allowed: {', '.join(sorted(allowed))})",
                      raw.strip()))
    return violations


def lint_file(
    path: pathlib.Path,
    rules: Iterable[str],
    layer: str | None = None,
) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        raise SystemExit(f"mono_lint: cannot read {path}: {err}")
    rules = tuple(rules)
    raw_lines = text.splitlines()

    # Comment/string-stripped view plus the per-line suppression sets (a
    # directive suppresses its own line and the one below it).
    code_lines: list[str] = []
    suppressed: list[set[str]] = []
    in_block = False
    previous_raw = ""
    for raw in raw_lines:
        code, in_block = strip_code_line(raw, in_block)
        code_lines.append(code)
        suppressed.append(suppressions(raw) | suppressions(previous_raw))
        previous_raw = raw

    violations: list[Violation] = []
    for line_number, (code, raw) in enumerate(zip(code_lines, raw_lines), start=1):
        for rule in rules:
            if rule not in RULES or rule in suppressed[line_number - 1]:
                continue
            for pattern, message in RULES[rule]:
                if pattern.search(code):
                    violations.append(
                        Violation(path, line_number, rule, message, raw.strip())
                    )
                    break  # One report per rule per line.

    if "raw-unit-double" in rules and path.suffix in (".h", ".hpp"):
        violations.extend(
            check_raw_unit_double(path, code_lines, raw_lines, suppressed))
    if "include-layering" in rules:
        file_layer = layer if layer is not None else layer_of(path)
        if file_layer is not None:
            violations.extend(
                check_include_layering(path, raw_lines, file_layer, suppressed))
    return violations


def iter_sources(root: pathlib.Path, directory: str) -> Iterable[pathlib.Path]:
    base = root / directory
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def lint_tree(root: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    for directory in SIM_DIRS:
        rules = ALL_RULES if directory in HOT_PATH_DIRS else SIM_RULES
        for path in iter_sources(root, directory):
            violations.extend(lint_file(path, rules))
    for directory in BENCH_DIRS:
        for path in iter_sources(root, directory):
            violations.extend(lint_file(path, BENCH_RULES))
    for directory in LAYER_ONLY_DIRS:
        for path in iter_sources(root, directory):
            violations.extend(lint_file(path, ("include-layering",)))
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True, type=pathlib.Path,
                        help="repository root")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated rule subset (explicit files only)")
    parser.add_argument("--layer", default=None,
                        help="treat explicit files as members of this layer "
                             "(include-layering; e.g. src/simcore)")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="lint these files (full rule set) instead of the tree")
    args = parser.parse_args(argv)

    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for rule in rules:
        if rule not in ALL_RULES:
            parser.error(f"unknown rule {rule!r}; known: {', '.join(ALL_RULES)}")
    if args.layer is not None and args.layer not in LAYER_DEPS:
        parser.error(f"unknown layer {args.layer!r}; "
                     f"known: {', '.join(LAYER_DEPS)}")

    if args.files:
        violations = []
        for path in args.files:
            violations.extend(lint_file(path, rules, layer=args.layer))
    else:
        violations = lint_tree(args.root)

    for v in violations:
        try:
            shown = v.path.resolve().relative_to(args.root.resolve())
        except ValueError:
            shown = v.path
        print(f"{shown}:{v.line_number}: [{v.rule}] {v.message}")
        print(f"    {v.line}")
    if violations:
        print(f"mono_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
