// Degradation detective: "Why did my workload run so slowly? Is hardware
// degradation leading to poor performance?" — the third question of the paper's
// introduction, answered with monotask instrumentation.
//
// One machine in the cluster has a failing disk running at a third of its rated
// bandwidth. Under Spark, the job is simply slower and the only visible symptom is
// stage-level stragglers. Under monotasks, each disk monotask reports its service
// time, so bytes/second *per machine* falls out of the existing metrics — and the
// sick machine is unmistakable.
//
// Run:  ./degradation_detective
#include <cstdio>

#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/sort.h"

namespace {

monosim::ClusterConfig DegradedCluster() {
  monosim::ClusterConfig cluster =
      monosim::ClusterConfig::Of(8, monosim::MachineConfig::HddWorker(2));
  monosim::MachineConfig sick = cluster.machine;
  for (auto& disk : sick.disks) {
    disk.bandwidth = monoutil::MiBps(30);  // A third of the healthy 90 MiB/s.
  }
  cluster.overrides.emplace_back(5, sick);
  return cluster;
}

monoload::SortParams Workload() {
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(80);
  params.values_per_key = 50;  // Disk-heavy: the degradation matters.
  params.num_map_tasks = 512;
  params.num_reduce_tasks = 512;
  return params;
}

}  // namespace

int main() {
  std::puts("Machine 5 has silently degraded disks (30 MiB/s instead of 90).\n");
  const auto cluster = DegradedCluster();
  const auto params = Workload();

  // Healthy-cluster baseline for context.
  double healthy_seconds = 0.0;
  {
    monosim::SimEnvironment env(
        monosim::ClusterConfig::Of(8, monosim::MachineConfig::HddWorker(2)));
    monosim::MonotasksExecutorSim mono(&env.sim(), &env.cluster(), &env.pool(), {});
    env.AttachExecutor(&mono);
    auto p = params;
    healthy_seconds =
        env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), p)).duration().seconds();
  }

  // What the Spark user sees: a slower job, nothing more specific.
  monosim::SimEnvironment spark_env(cluster);
  monosim::SparkExecutorSim spark(&spark_env.sim(), &spark_env.cluster(),
                                  &spark_env.pool(), {});
  spark_env.AttachExecutor(&spark);
  auto spark_params = params;
  const auto spark_result =
      spark_env.driver().RunJob(monoload::MakeSortJob(&spark_env.dfs(), spark_params));
  std::printf("Spark:      %6.1f s (healthy cluster would take %.1f s). Something is\n"
              "            wrong, but task-level metrics mix disk, CPU, and network.\n\n",
              spark_result.duration().seconds(), healthy_seconds);

  // What the monotasks user sees.
  monosim::SimEnvironment mono_env(cluster);
  monosim::MonotasksExecutorSim mono(&mono_env.sim(), &mono_env.cluster(),
                                     &mono_env.pool(), {});
  mono_env.AttachExecutor(&mono);
  auto mono_params = params;
  const auto mono_result =
      mono_env.driver().RunJob(monoload::MakeSortJob(&mono_env.dfs(), mono_params));
  std::printf("MonoSpark:  %6.1f s. Per-machine disk service rate from the disk\n"
              "            monotasks of the map stage:\n\n",
              mono_result.duration().seconds());

  const auto& times = mono_result.stages[0].monotask_times;
  std::puts("  machine   disk monotask rate");
  int worst = 0;
  double worst_rate = 1e18;
  for (size_t m = 0; m < times.disk_seconds_per_machine.size(); ++m) {
    const double seconds = times.disk_seconds_per_machine[m];
    if (seconds <= 0) {
      continue;
    }
    const double rate =
        static_cast<double>(times.disk_bytes_per_machine[m].count()) / seconds /
                        (1024.0 * 1024.0);
    std::printf("  %7zu   %6.1f MiB/s%s\n", m, rate, rate < 50 ? "   <-- DEGRADED" : "");
    if (rate < worst_rate) {
      worst_rate = rate;
      worst = static_cast<int>(m);
    }
  }
  std::printf("\nDiagnosis: machine %d serves disk monotasks at %.0f MiB/s — replace its"
              " disks.\n", worst, worst_rate);
  return 0;
}
