// Bottleneck doctor: diagnose a slow analytics job the monotasks way.
//
// Runs a Big Data Benchmark query under both architectures and produces the kind of
// report the paper argues should be trivial: per-stage bottlenecks, per-machine
// utilization of the bottleneck resource, and what each architecture lets you see.
// The Spark run can only offer aggregate device counters; the monotasks run has
// per-monotask service times, so the doctor can say *why* the stage took as long as
// it did and what would fix it.
//
// Run:  ./bottleneck_doctor [query]   (query in {1a,1b,1c,2a,2b,2c,3a,3b,3c,4};
//                                      default 2c)
#include <cstdio>
#include <string>

#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/bdb.h"

namespace {

monoload::BdbQuery ParseQuery(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "2c";
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    if (monoload::BdbQueryName(query) == name) {
      return query;
    }
  }
  std::fprintf(stderr, "unknown query '%s', using 2c\n", name.c_str());
  return monoload::BdbQuery::k2c;
}

double MeanUtil(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return values.empty() ? 0.0 : total / static_cast<double>(values.size());
}

}  // namespace

int main(int argc, char** argv) {
  const monoload::BdbQuery query = ParseQuery(argc, argv);
  const auto cluster = monoload::BdbClusterConfig();
  std::printf("Diagnosing BDB query %s on 5 workers x 2 HDD...\n\n",
              monoload::BdbQueryName(query).c_str());

  // Run under Spark (the before picture).
  monosim::SimEnvironment spark_env(cluster);
  spark_env.cluster().EnableTrace();
  monosim::SparkExecutorSim spark(&spark_env.sim(), &spark_env.cluster(),
                                  &spark_env.pool(), {});
  spark_env.AttachExecutor(&spark);
  const auto spark_result =
      spark_env.driver().RunJob(monoload::MakeBdbQueryJob(&spark_env.dfs(), query));

  // Run under monotasks (the after picture).
  monosim::SimEnvironment mono_env(cluster);
  mono_env.cluster().EnableTrace();
  monosim::MonotasksExecutorSim mono(&mono_env.sim(), &mono_env.cluster(),
                                     &mono_env.pool(), {});
  mono.EnableQueueTraces();
  mono_env.AttachExecutor(&mono);
  const auto mono_result =
      mono_env.driver().RunJob(monoload::MakeBdbQueryJob(&mono_env.dfs(), query));

  std::printf("Runtime: Spark %.1f s, MonoSpark %.1f s\n\n", spark_result.duration(),
              mono_result.duration());

  std::puts("What Spark can tell you (aggregate device counters per stage):");
  for (const auto& stage : spark_result.stages) {
    std::printf("  %-16s %6.1f s   cpu util %4.0f%%  disk util %4.0f%%  net util %4.0f%%\n",
                stage.name.c_str(), stage.duration(), 100 * MeanUtil(stage.utilization.cpu),
                100 * MeanUtil(stage.utilization.disk),
                100 * MeanUtil(stage.utilization.network));
  }
  std::puts("  ...but which of that device time belongs to which work, and what would");
  std::puts("  change under new hardware, is guesswork (Figs 15-17).\n");

  std::puts("What monotasks tells you (per-monotask service time, built in):");
  const monomodel::MonotasksModel model(
      mono_result, monomodel::HardwareProfile::FromCluster(cluster));
  for (int s = 0; s < model.num_stages(); ++s) {
    const auto& stage = mono_result.stages[static_cast<size_t>(s)];
    const auto& times = stage.monotask_times;
    const auto ideal = model.IdealTimes(s);
    std::printf("  %-16s %6.1f s\n", stage.name.c_str(), stage.duration());
    std::printf("      monotask seconds: compute %.0f (deser %.0f) | disk read %.0f / "
                "write %.0f | network %.0f\n",
                times.compute_seconds, times.compute_deser_seconds,
                times.disk_read_seconds, times.disk_write_seconds,
                times.network_seconds);
    std::printf("      ideal times:      cpu %.1f s, disk %.1f s, network %.1f s  "
                "=> bottleneck: %s\n",
                ideal.cpu, ideal.disk, ideal.network,
                monomodel::ResourceName(ideal.bottleneck()));
  }

  // §3.1: contention is visible as queue length — no inference required.
  const double window = mono_result.duration();
  std::printf("\nMean scheduler queue lengths on machine 0 (contention, directly):\n"
              "      cpu %.1f monotasks queued | disk0 %.1f | disk1 %.1f\n",
              mono.cpu_scheduler(0).queue_trace().Integrate(0, window) / window,
              mono.disk_scheduler(0, 0).queue_trace().Integrate(0, window) / window,
              mono.disk_scheduler(0, 1).queue_trace().Integrate(0, window) / window);

  std::puts("\nPrescription:");
  const auto bottleneck = model.JobBottleneck();
  std::printf("  The job is %s-bound. Best case from optimizing it: %.1f s "
              "(currently %.1f s).\n",
              monomodel::ResourceName(bottleneck),
              model.PredictWithInfinitelyFast(bottleneck), mono_result.duration());
  std::printf("  Removing one disk per machine would give %.1f s; adding two more, "
              "%.1f s.\n",
              model.PredictJobSeconds(model.baseline().WithDisksPerMachine(1)),
              model.PredictJobSeconds(model.baseline().WithDisksPerMachine(4)));
  return 0;
}
