// Bottleneck doctor: diagnose a slow analytics job the monotasks way.
//
// Runs a Big Data Benchmark query under both architectures with the event
// tracer installed and produces the kind of report the paper argues should be
// trivial: per-stage bottlenecks with per-resource blame from the trace, the
// §3.1 queue-length contention signal, and what each architecture lets you
// see. The Spark run can only offer aggregate device counters; the monotasks
// run has per-monotask spans and scheduler queues, so the doctor can say *why*
// the stage took as long as it did and what would fix it.
//
// Run:  ./bottleneck_doctor [query]   (query in {1a,1b,1c,2a,2b,2c,3a,3b,3c,4};
//                                      default 2c)
#include <cstdio>
#include <string>

#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/model/trace_report.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/bdb.h"

namespace {

monoload::BdbQuery ParseQuery(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "2c";
  for (monoload::BdbQuery query : monoload::AllBdbQueries()) {
    if (monoload::BdbQueryName(query) == name) {
      return query;
    }
  }
  std::fprintf(stderr, "unknown query '%s', using 2c\n", name.c_str());
  return monoload::BdbQuery::k2c;
}

double MeanUtil(const std::vector<double>& values) {
  double total = 0.0;
  for (double v : values) {
    total += v;
  }
  return values.empty() ? 0.0 : total / static_cast<double>(values.size());
}

}  // namespace

int main(int argc, char** argv) {
  const monoload::BdbQuery query = ParseQuery(argc, argv);
  const auto cluster = monoload::BdbClusterConfig();
  std::printf("Diagnosing BDB query %s on 5 workers x 2 HDD...\n\n",
              monoload::BdbQueryName(query).c_str());

  // Both runs record into one trace; the report below is derived from it.
  monotrace::ScopedTracer scoped;

  // Run under Spark (the before picture).
  monosim::SimEnvironment spark_env(cluster);
  spark_env.cluster().EnableTrace();
  monosim::SparkExecutorSim spark(&spark_env.sim(), &spark_env.cluster(),
                                  &spark_env.pool(), {});
  spark_env.AttachExecutor(&spark);
  const auto spark_result =
      spark_env.driver().RunJob(monoload::MakeBdbQueryJob(&spark_env.dfs(), query));

  // Run under monotasks (the after picture).
  monosim::SimEnvironment mono_env(cluster);
  mono_env.cluster().EnableTrace();
  monosim::MonotasksExecutorSim mono(&mono_env.sim(), &mono_env.cluster(),
                                     &mono_env.pool(), {});
  mono_env.AttachExecutor(&mono);
  const auto mono_result =
      mono_env.driver().RunJob(monoload::MakeBdbQueryJob(&mono_env.dfs(), query));

  std::printf("Runtime: Spark %.1f s, MonoSpark %.1f s\n\n", spark_result.duration(),
              mono_result.duration());

  std::puts("What Spark can tell you (aggregate device counters per stage):");
  for (const auto& stage : spark_result.stages) {
    std::printf("  %-16s %6.1f s   cpu util %4.0f%%  disk util %4.0f%%  net util %4.0f%%\n",
                stage.name.c_str(), stage.duration(), 100 * MeanUtil(stage.utilization.cpu),
                100 * MeanUtil(stage.utilization.disk),
                100 * MeanUtil(stage.utilization.network));
  }
  std::puts("  ...but which of that device time belongs to which work, and what would");
  std::puts("  change under new hardware, is guesswork (Figs 15-17).\n");

  // The trace report: per-stage resource blame from the recorded spans, and
  // the §3.1 signal — contention visible directly as scheduler queue length.
  const monomodel::ParsedTrace trace =
      monomodel::ParseChromeTrace(scoped.tracer().ToJson());
  for (const std::string& error : trace.errors) {
    std::fprintf(stderr, "trace problem: %s\n", error.c_str());
  }
  const monomodel::TraceReport report = monomodel::TraceReport::Build(trace);

  std::puts("What monotasks tells you (per-monotask spans, from the trace):");
  for (const auto& stage : report.stages()) {
    if (stage.label.rfind("mono:", 0) != 0 || stage.blame.empty()) {
      continue;
    }
    std::printf("  %-22s %6.1f s\n", stage.label.c_str(), stage.duration());
    for (const auto& [category, blame] : stage.blame) {
      std::printf("      %-8s busy %7.1f s over %2d lane(s), utilization %3.0f%%\n",
                  category.c_str(), blame.busy_seconds, blame.lanes,
                  100.0 * blame.utilization);
    }
    for (const auto& [series, mean] : stage.mean_queue) {
      std::printf("      queue %-12s mean length %.1f  (Sec 3.1: contention, "
                  "directly)\n",
                  series.c_str(), mean);
    }
    std::printf("      => busiest resource: %s\n", stage.busiest().c_str());
  }
  if (report.untagged_busy_seconds() > 0.0) {
    std::printf("  (plus %.1f s of device time with no stage tag — OS writeback the\n"
                "   Spark run cannot attribute; Sec 2.2)\n",
                report.untagged_busy_seconds());
  }

  std::puts("\nPrescription (Sec 6 model, cross-checked against the trace):");
  const monomodel::MonotasksModel model(
      mono_result, monomodel::HardwareProfile::FromCluster(cluster));
  for (const auto& entry : report.CrossCheckWithModel(model)) {
    if (entry.stage.rfind("mono:", 0) != 0) {
      continue;
    }
    std::printf("  %-22s trace: %-8s model: %-8s %s\n", entry.stage.c_str(),
                entry.trace_verdict.c_str(), entry.model_verdict.c_str(),
                entry.agree ? "agree" : "DISAGREE");
  }
  const auto bottleneck = model.JobBottleneck();
  std::printf("  The job is %s-bound. Best case from optimizing it: %.1f s "
              "(currently %.1f s).\n",
              monomodel::ResourceName(bottleneck),
              model.PredictWithInfinitelyFast(bottleneck), mono_result.duration());
  std::printf("  Removing one disk per machine would give %.1f s; adding two more, "
              "%.1f s.\n",
              model.PredictJobSeconds(model.baseline().WithDisksPerMachine(1)),
              model.PredictJobSeconds(model.baseline().WithDisksPerMachine(4)));
  return 0;
}
