// What-if advisor: the §6 performance model as an interactive-style tool.
//
// Runs a sort workload once on the simulated cluster under the monotasks executor,
// then answers the questions from the paper's introduction using nothing but the
// monotask runtimes from that single run:
//
//   * What hardware should I run on?  (more disks / SSDs / more machines / 10 GbE)
//   * Is it worth caching the input in memory, deserialized?
//   * What is the bottleneck, and what is the best case from optimizing each
//     resource?
//
// Run:  ./whatif_advisor
#include <cstdio>

#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/monotask/mono_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main() {
  // The workload: a 150 GB sort on 10 machines with 2 HDDs each.
  monosim::ClusterConfig cluster =
      monosim::ClusterConfig::Of(10, monosim::MachineConfig::HddWorker(2));
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(150);
  params.values_per_key = 20;
  params.num_map_tasks = 600;
  params.num_reduce_tasks = 600;

  std::puts("Running the workload once under the monotasks executor...");
  monosim::SimEnvironment env(cluster);
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  const monosim::JobResult result =
      env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));
  std::printf("Observed runtime: %.1f s\n\n", result.duration());

  const auto baseline = monomodel::HardwareProfile::FromCluster(cluster);
  const monomodel::MonotasksModel model(result, baseline);

  // Bottleneck analysis (what the paper calls trivial with monotasks).
  std::printf("Job bottleneck: %s\n", monomodel::ResourceName(model.JobBottleneck()));
  for (int s = 0; s < model.num_stages(); ++s) {
    const auto ideal = model.IdealTimes(s);
    std::printf("  %-14s ideal cpu %6.1f s   disk %6.1f s   network %6.1f s   -> %s\n",
                model.stage_input(s).name.c_str(), ideal.cpu, ideal.disk, ideal.network,
                monomodel::ResourceName(ideal.bottleneck()));
  }

  std::puts("\nWhat-if predictions (no new runs needed):");
  auto report = [&](const char* question, double predicted) {
    std::printf("  %-52s %7.1f s  (%+5.1f%%)\n", question, predicted,
                100.0 * (predicted / result.duration().seconds() - 1.0));
  };
  report("4 disks per machine instead of 2?",
         model.PredictJobSeconds(baseline.WithDisksPerMachine(4)));
  report("replace HDDs with SSDs (450 MiB/s)?",
         model.PredictJobSeconds(baseline.WithDiskBandwidth(monoutil::MiBps(450))));
  report("double the cluster (20 machines)?",
         model.PredictJobSeconds(baseline.WithMachines(20)));
  {
    auto ten_gbe = baseline;
    ten_gbe.nic_bandwidth = monoutil::Gbps(10);
    report("upgrade the network 1 GbE -> 10 GbE?", model.PredictJobSeconds(ten_gbe));
  }
  {
    monomodel::SoftwareChanges software;
    software.input_in_memory_deserialized = true;
    report("cache input in memory, deserialized?",
           model.PredictJobSeconds(baseline, software));
  }
  {
    monomodel::SoftwareChanges software;
    software.input_stored_uncompressed = true;
    report("store input uncompressed on disk?",
           model.PredictJobSeconds(baseline, software));
  }

  std::puts("\nBest case from optimizing each resource (Fig 14 style):");
  for (auto resource : {monomodel::Resource::kCpu, monomodel::Resource::kDisk,
                        monomodel::Resource::kNetwork}) {
    std::printf("  infinitely fast %-8s -> %7.1f s\n", monomodel::ResourceName(resource),
                model.PredictWithInfinitelyFast(resource));
  }
  return 0;
}
