// Engine showdown: the same real job under both architectures.
//
// Runs an I/O-heavy aggregation twice through the threaded engine — once in
// task-threads mode (the baseline: each task does its own I/O from a slot thread,
// contending on the disks) and once in monotasks mode (per-resource schedulers, one
// disk operation at a time) — and compares wall time and what each architecture can
// report afterwards.
//
// Run:  ./engine_showdown
#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/api/dataset.h"

namespace {

using Record = std::pair<int64_t, int64_t>;

monotasks::EngineConfig ConfigFor(monotasks::ExecutionMode mode) {
  monotasks::EngineConfig config;
  config.num_workers = 2;
  config.cores_per_worker = 4;
  config.disks_per_worker = 1;
  config.mode = mode;
  // Slow-ish disks and a modest time scale so device time dominates and the
  // scheduling difference is visible in wall time.
  config.disk_bandwidth = monoutil::MiBps(64);
  config.disk_seek_alpha = 0.6;
  config.time_scale = 40.0;
  return config;
}

double RunOnce(monotasks::ExecutionMode mode, bool print_metrics) {
  monotasks::MonoClient client(ConfigFor(mode));
  // ~96 MiB of records through a shuffle: disk-dominated at 64 MiB/s.
  std::vector<Record> input;
  input.reserve(3 << 20);
  for (int64_t i = 0; i < (3 << 20); ++i) {
    input.emplace_back(i % 1024, i);
  }
  // A full repartition (no map-side combine): all ~96 MiB is written as shuffle
  // data, served back from disk, and re-read — the disk-heavy case.
  auto repartitioned = client.Parallelize<Record>(input, 16).PartitionBy<int64_t>(
      [](const Record& r) { return r.first; }, 8);
  const auto count = repartitioned.Count();
  if (count != (3 << 20)) {
    std::fprintf(stderr, "unexpected record count %ld\n", count);
  }

  const auto& metrics = client.last_job_metrics();
  if (print_metrics) {
    for (const auto& stage : metrics.stages) {
      std::printf("    %-8s compute %6.2fs | disk r %6.2fs w %6.2fs | net %5.2fs\n",
                  stage.name.c_str(), stage.compute_seconds, stage.disk_read_seconds,
                  stage.disk_write_seconds, stage.network_seconds);
    }
  }
  return metrics.wall_seconds;
}

}  // namespace

int main() {
  std::puts("Same job, same devices, two architectures.\n");

  std::puts("Task threads (baseline — tasks do their own I/O, slots = cores):");
  const double baseline = RunOnce(monotasks::ExecutionMode::kTaskThreads, true);
  std::printf("    wall time: %.2f s\n\n", baseline);

  std::puts("Monotasks (per-resource schedulers, one disk op at a time):");
  const double mono = RunOnce(monotasks::ExecutionMode::kMonotasks, true);
  std::printf("    wall time: %.2f s\n\n", mono);

  std::printf("Monotasks / baseline: %.2fx %s\n", mono / baseline,
              mono <= baseline ? "(faster: no disk-head thrash)" : "(slower)");
  std::puts("\nBeyond the speed difference: the monotasks run's per-stage resource");
  std::puts("breakdown above is exact service time per device, usable directly by the");
  std::puts("performance model; the baseline's is whatever the tasks happened to");
  std::puts("self-report while contending.");
  return 0;
}
