// Auto-configuration demo (§7): the tasks-per-machine knob, and why monotasks
// doesn't have one.
//
// Sweeps Spark's tasks-per-machine setting for an I/O-heavy and a CPU-heavy sort on
// the simulated cluster and compares against the monotasks executor, which has no
// such setting — each per-resource scheduler admits exactly as many monotasks as the
// resource sustains.
//
// Run:  ./autoconfig_demo
#include <algorithm>
#include <cstdio>

#include "src/framework/environment.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace {

double RunSpark(const monosim::ClusterConfig& cluster, const monoload::SortParams& params,
                int slots) {
  monosim::SimEnvironment env(cluster);
  monosim::SparkConfig config;
  config.slots_per_machine = slots;
  monosim::SparkExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), config);
  env.AttachExecutor(&executor);
  return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params)).duration().seconds();
}

double RunMono(const monosim::ClusterConfig& cluster, const monoload::SortParams& params) {
  monosim::SimEnvironment env(cluster);
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  return env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params)).duration().seconds();
}

}  // namespace

int main() {
  const auto cluster = monosim::ClusterConfig::Of(8, monosim::MachineConfig::HddWorker(2));

  struct Scenario {
    const char* label;
    int values_per_key;
  };
  for (const Scenario& scenario :
       {Scenario{"CPU-heavy sort (2 longs/value)", 2},
        Scenario{"I/O-heavy sort (100 longs/value)", 100}}) {
    monoload::SortParams params;
    params.total_bytes = monoutil::GiB(60);
    params.values_per_key = scenario.values_per_key;
    params.num_map_tasks = 960;
    params.num_reduce_tasks = 960;

    std::printf("\n%s on 8 workers (8 cores, 2 HDDs each):\n", scenario.label);
    double best = 1e18;
    int best_slots = 0;
    for (int slots : {2, 4, 8, 16, 32}) {
      const double seconds = RunSpark(cluster, params, slots);
      if (seconds < best) {
        best = seconds;
        best_slots = slots;
      }
      std::printf("  Spark, %2d tasks/machine: %7.1f s\n", slots, seconds);
    }
    const double mono = RunMono(cluster, params);
    std::printf("  MonoSpark (no knob):      %7.1f s   (best Spark: %d tasks/machine"
                " at %.1f s -> mono is %.0f%% %s)\n",
                mono, best_slots, best, 100.0 * std::abs(1.0 - mono / best),
                mono <= best ? "faster" : "slower");
  }
  std::puts("\nThe best Spark setting depends on the workload (and differs between map");
  std::puts("and reduce stages); the per-resource schedulers make the knob unnecessary.");
  return 0;
}
