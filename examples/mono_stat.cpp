// mono_stat: the always-on telemetry station.
//
// Everything printed here comes from instrumentation that is on in every run —
// the MetricsRegistry aggregates (counters, log-bucketed latency histograms,
// time-weighted gauges) and the bounded MonotaskLog — with zero configuration:
// no MONO_TRACE, no rebuild, no sampling window to arm. This is the paper's
// performance-clarity claim made concrete: after any run you can ask "where
// did the time go?" and get per-stage, per-resource blame with queue-wait
// separated from service.
//
// The tool runs the §5.2 sort (scaled down) under the monotasks executor and
// prints:
//   1. the critical-path report derived from the MonotaskLog — per-stage
//      blame splitting wall clock into per-resource critical seconds,
//      scheduler-gap blocked time, and idle time;
//   2. a cross-check of that log-derived blame against the opt-in Chrome-trace
//      pipeline (the two must agree: both measure the same service intervals);
//   3. the process TelemetrySnapshot as JSON — the same schema benches embed
//      in BENCH_*.json and MONO_TELEMETRY=<path> writes at exit.
//
// Run:  ./mono_stat [--json]     (--json: print only the TelemetrySnapshot,
//                                 for piping into jq or a dashboard)
#include <cstdio>
#include <map>
#include <string>

#include "src/common/tracing/metrics_registry.h"
#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/model/critical_path.h"
#include "src/model/trace_report.h"
#include "src/monotask/mono_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

int main(int argc, char** argv) {
  const bool json_only =
      argc > 1 && std::string(argv[1]) == "--json";

  // A balanced sort (20 values/key, §5.2) scaled to 10 GiB so the example runs
  // in a blink; the instrumentation exercised is identical at any size.
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(10);

  // The tracer is opt-in and exists here only to cross-check the always-on
  // path; everything else below would work the same without it.
  monotrace::ScopedTracer scoped;

  monosim::SimEnvironment env(monoload::SortClusterConfig());
  env.cluster().EnableTrace();
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  const monosim::JobResult result =
      env.driver().RunJob(monoload::MakeSortJob(&env.dfs(), params));

  if (json_only) {
    std::fputs(monotrace::MetricsRegistry::Global().TakeTelemetrySnapshot().ToJson().c_str(),
               stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  std::printf("sort(%d GiB, %d values/key) on 20 workers x 2 HDD: %.1f s, digest %016llx\n\n",
              static_cast<int>(params.total_bytes / monoutil::GiB(1)), params.values_per_key,
              result.duration(), static_cast<unsigned long long>(result.sim_digest));

  // 1. Critical-path blame from the always-on MonotaskLog.
  const monomodel::CriticalPathReport report =
      monomodel::CriticalPathReport::Build(env.monotask_log());
  std::fputs(report.ToString().c_str(), stdout);

  // 2. Cross-check the log-derived busy seconds against the trace pipeline.
  const monomodel::ParsedTrace trace =
      monomodel::ParseChromeTrace(scoped.tracer().ToJson());
  for (const std::string& error : trace.errors) {
    std::fprintf(stderr, "trace problem: %s\n", error.c_str());
  }
  const monomodel::TraceReport trace_report = monomodel::TraceReport::Build(trace);
  std::map<int, std::string> stage_labels;
  for (const monosim::StageResult& stage : result.stages) {
    stage_labels[stage.stage_index] = std::string(executor.trace_name()) + ":" + stage.name;
  }
  std::puts("\nlog-vs-trace cross-check (per-stage busy seconds, tolerance 5%):");
  bool all_agree = true;
  for (const monomodel::CriticalPathCrossCheck& check :
       report.CrossCheckWithTrace(trace_report, stage_labels)) {
    std::printf("  %-20s %-8s log %8.2f s  trace %8.2f s  err %5.1f%%  %s\n",
                check.stage.c_str(), check.resource.c_str(), check.log_busy_seconds,
                check.trace_busy_seconds, 100.0 * check.relative_error,
                check.agree ? "agree" : "DISAGREE");
    all_agree = all_agree && check.agree;
  }

  // 3. The process-wide TelemetrySnapshot: queue-wait and service histograms
  // from the executors, utilization integrals from the devices, cache gauges.
  std::puts("\ntelemetry snapshot (same schema as BENCH_*.json and MONO_TELEMETRY):");
  std::fputs(monotrace::MetricsRegistry::Global().TakeTelemetrySnapshot().ToJson().c_str(),
             stdout);
  std::fputc('\n', stdout);

  // The cross-check doubles as this example's self-test: both pipelines
  // measure the same [dispatch, done] intervals, so disagreement means one of
  // them lost or double-counted work.
  return all_agree ? 0 : 1;
}
