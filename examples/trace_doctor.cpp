// Trace doctor: bottleneck diagnosis from the event trace alone.
//
// The bottleneck_doctor example diagnoses from the executors' in-memory
// metrics. This one goes through the observability subsystem instead: run the
// job with a Tracer installed, serialize the trace to Chrome Trace Event JSON,
// parse it back, and derive per-stage resource blame purely from the spans —
// the workflow an engineer has when all they were handed is a trace file.
// The trace verdict is then cross-checked against the §6 model's ideal-time
// bottleneck computed from the same run's aggregate metrics: when the two
// independent paths agree, the trace is telling the truth.
//
// Run:  ./trace_doctor               self-run a disk-bound sort and diagnose it
//       ./trace_doctor out.json      diagnose an existing MONO_TRACE file
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/tracing/tracer.h"
#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/model/trace_report.h"
#include "src/monotask/mono_executor.h"
#include "src/multitask/spark_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/sort.h"

namespace {

int ReportFromFile(const char* path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream content;
  content << file.rdbuf();
  const monomodel::ParsedTrace trace = monomodel::ParseChromeTrace(content.str());
  for (const std::string& error : trace.errors) {
    std::fprintf(stderr, "trace problem: %s\n", error.c_str());
  }
  if (!trace.ok()) {
    return 1;
  }
  std::printf("%zu spans, %zu counter samples, %zu instants\n\n", trace.spans.size(),
              trace.counters.size(), trace.instants.size());
  std::fputs(monomodel::TraceReport::Build(trace).ToString().c_str(), stdout);
  return 0;
}

monoload::SortParams DiskBoundSort() {
  monoload::SortParams params;
  params.total_bytes = monoutil::GiB(16);
  params.values_per_key = 50;  // Disk-bound on 2-HDD workers (§5.2's knob).
  params.num_map_tasks = 64;
  params.num_reduce_tasks = 64;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    return ReportFromFile(argv[1]);
  }

  const auto cluster = monoload::SmallHddClusterConfig();
  std::puts("Self-run: disk-bound sort (16 GiB, 50 values/key) on 5 workers x 2 HDD,");
  std::puts("traced under both architectures, diagnosed from the trace alone.\n");

  monotrace::ScopedTracer scoped;

  // Spark baseline. Without EnableTrace() the device-utilization columns of the
  // stage metrics stay unmeasured — the report below points that out.
  monosim::SimEnvironment spark_env(cluster);
  monosim::SparkExecutorSim spark(&spark_env.sim(), &spark_env.cluster(),
                                  &spark_env.pool(), {});
  spark_env.AttachExecutor(&spark);
  const auto spark_result =
      spark_env.driver().RunJob(monoload::MakeSortJob(&spark_env.dfs(), DiskBoundSort()));

  // Monotasks run.
  monosim::SimEnvironment mono_env(cluster);
  mono_env.cluster().EnableTrace();
  monosim::MonotasksExecutorSim mono(&mono_env.sim(), &mono_env.cluster(),
                                     &mono_env.pool(), {});
  mono_env.AttachExecutor(&mono);
  const auto mono_result =
      mono_env.driver().RunJob(monoload::MakeSortJob(&mono_env.dfs(), DiskBoundSort()));

  std::printf("Runtime: Spark %.1f s, MonoSpark %.1f s\n", spark_result.duration(),
              mono_result.duration());
  std::printf("Spark stage utilization measured: %s;  monotasks run: %s\n\n",
              spark_result.stages[0].utilization.measured ? "yes" : "no (trace off)",
              mono_result.stages[0].utilization.measured ? "yes" : "no (trace off)");

  // Round-trip through the JSON, exactly as an offline consumer would.
  const monomodel::ParsedTrace trace =
      monomodel::ParseChromeTrace(scoped.tracer().ToJson());
  for (const std::string& error : trace.errors) {
    std::fprintf(stderr, "trace problem: %s\n", error.c_str());
  }
  if (!trace.ok()) {
    return 1;
  }
  const monomodel::TraceReport report = monomodel::TraceReport::Build(trace);
  std::fputs(report.ToString().c_str(), stdout);

  // Cross-check: the trace's per-stage verdict vs the §6 ideal-time model.
  const monomodel::MonotasksModel model(
      mono_result, monomodel::HardwareProfile::FromCluster(cluster));
  // The model was built from the monotasks run, so only mono-labelled stages
  // are held to agreement; the Spark rows show what its span mix looks like.
  std::puts("\nCross-check against the Sec.6 model:");
  bool mono_agree = true;
  for (const auto& entry : report.CrossCheckWithModel(model)) {
    const bool is_mono = entry.stage.rfind("mono:", 0) == 0;
    std::printf("  %-22s trace says %-8s model says %-8s %s\n", entry.stage.c_str(),
                entry.trace_verdict.c_str(), entry.model_verdict.c_str(),
                entry.agree ? "AGREE" : (is_mono ? "DISAGREE" : "(informational)"));
    if (is_mono) {
      mono_agree = mono_agree && entry.agree;
    }
  }
  if (!mono_agree) {
    std::puts("  (disagreement: the trace and the model blame different resources)");
    return 1;
  }
  return 0;
}
