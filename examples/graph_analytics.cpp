// Graph analytics: settle the "does the network matter for graph analytics?" debate
// for YOUR cluster with one run.
//
// The paper cites an ongoing argument ([22, 23, 30]) about whether faster networks
// help graph workloads. With monotasks, the answer for a given workload and cluster
// is one job away: run PageRank once, read the per-resource monotask times, and ask
// the model what a 10 GbE upgrade — or an in-memory graph, or more cores — would do.
//
// Run:  ./graph_analytics
#include <cstdio>

#include "src/framework/environment.h"
#include "src/model/monotasks_model.h"
#include "src/monotask/mono_executor.h"
#include "src/workloads/clusters.h"
#include "src/workloads/pagerank.h"

int main() {
  const auto cluster = monoload::SortClusterConfig();  // 20 workers, 2 HDD, 1 GbE.
  monoload::PageRankParams params;
  params.iterations = 4;

  std::puts("Running 4 PageRank iterations on 20 workers (1 GbE, in-memory graph)...");
  monosim::SimEnvironment env(cluster);
  monosim::MonotasksExecutorSim executor(&env.sim(), &env.cluster(), &env.pool(), {});
  env.AttachExecutor(&executor);
  const monosim::JobResult result =
      env.driver().RunJob(monoload::MakePageRankJob(&env.dfs(), params));
  std::printf("Runtime: %.1f s over %zu stages\n\n", result.duration(),
              result.stages.size());

  const auto baseline = monomodel::HardwareProfile::FromCluster(cluster);
  const monomodel::MonotasksModel model(result, baseline);

  std::printf("Job bottleneck: %s\n", monomodel::ResourceName(model.JobBottleneck()));
  const auto ideal = model.IdealTimes(0);
  std::printf("First contributions stage: ideal cpu %.1f s, network %.1f s, disk %.1f s\n\n",
              ideal.cpu, ideal.network, ideal.disk);

  auto answer = [&](const char* question, double predicted) {
    std::printf("  %-44s %7.1f s (%+.0f%%)\n", question, predicted,
                100.0 * (predicted / result.duration().seconds() - 1.0));
  };
  std::puts("The debate, settled for this cluster:");
  {
    auto ten_gbe = baseline;
    ten_gbe.nic_bandwidth = monoutil::Gbps(10);
    answer("10 GbE instead of 1 GbE?", model.PredictJobSeconds(ten_gbe));
  }
  answer("2x the machines?", model.PredictJobSeconds(baseline.WithMachines(40)));
  answer("infinitely fast network (upper bound)?",
         model.PredictWithInfinitelyFast(monomodel::Resource::kNetwork));
  answer("infinitely fast CPU (upper bound)?",
         model.PredictWithInfinitelyFast(monomodel::Resource::kCpu));

  std::puts("\n(McSherry & Schwarzkopf would ask for the single-threaded baseline;");
  std::puts(" monotasks at least tells you which hardware check to run first.)");
  return 0;
}
