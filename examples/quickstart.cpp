// Quickstart: word count on the monotasks execution engine.
//
// The same program a Spark user would write — parallelize lines, split into words,
// reduce by key — but executed as monotasks: every disk read, computation, shuffle
// fetch and disk write is a separate single-resource unit of work, scheduled by the
// per-resource schedulers on each worker. Because of that, the engine can report
// exactly where the time went, per stage and per resource, with no extra
// instrumentation.
//
// Run:  ./quickstart
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/dataset.h"

int main() {
  using WordCount = std::pair<std::string, int64_t>;

  // A 4-worker in-process cluster; each worker has 2 cores and 1 disk. time_scale
  // makes the simulated devices run 200x faster than real time.
  monotasks::EngineConfig config;
  config.num_workers = 4;
  config.cores_per_worker = 2;
  config.disks_per_worker = 1;
  config.time_scale = 200.0;
  monotasks::MonoClient client(config);

  // Some input text.
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("monotasks make performance reasoning simple");
    lines.push_back("each monotask uses exactly one resource");
    lines.push_back("per resource schedulers make contention visible");
  }

  auto words = client.Parallelize<std::string>(lines, 8)
                   .FlatMap<WordCount>([](const std::string& line) {
                     std::vector<WordCount> out;
                     std::istringstream stream(line);
                     std::string word;
                     while (stream >> word) {
                       out.emplace_back(word, 1);
                     }
                     return out;
                   });
  auto counts = monotasks::ReduceByKey<std::string, int64_t>(
      words, [](const int64_t& a, const int64_t& b) { return a + b; }, 4);

  std::map<std::string, int64_t> result;
  for (auto& [word, count] : counts.Collect()) {
    result[word] = count;
  }

  std::puts("Top words:");
  for (const auto& [word, count] : result) {
    if (count >= 200) {
      std::printf("  %-12s %ld\n", word.c_str(), count);
    }
  }

  // The clarity dividend: per-stage, per-resource monotask times, for free.
  const auto& metrics = client.last_job_metrics();
  std::puts("\nPer-stage monotask service time (seconds of device/core time):");
  std::puts("  stage    tasks  compute   disk-read  disk-write  network");
  for (const auto& stage : metrics.stages) {
    std::printf("  %-8s %5d  %7.4f   %9.4f  %10.4f  %7.4f\n", stage.name.c_str(),
                stage.num_tasks, stage.compute_seconds, stage.disk_read_seconds,
                stage.disk_write_seconds, stage.network_seconds);
  }
  std::printf("\nJob wall time: %.3f s (device time scaled %gx)\n", metrics.wall_seconds,
              config.time_scale);
  return 0;
}
