// Log analytics: a realistic multi-stage pipeline on the monotasks engine.
//
// Generates a day of synthetic web-server logs, then answers an on-call question —
// "which endpoints are throwing 5xx errors, and how bad is each?" — with a pipeline
// of parse -> filter -> aggregate -> sort, all executed as monotask DAGs. Shows the
// Dataset API on a string-heavy domain workload and prints the per-stage resource
// breakdown at the end.
//
// Run:  ./log_analytics
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/api/dataset.h"
#include "src/common/rng.h"

namespace {

struct LogLine {
  std::string endpoint;
  int64_t status = 0;
  int64_t latency_us = 0;
};

std::vector<std::string> GenerateLogs(int count, uint64_t seed) {
  const std::vector<std::string> endpoints = {
      "/api/users", "/api/orders", "/api/cart", "/api/search", "/healthz", "/login"};
  monoutil::Rng rng(seed);
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto& endpoint = endpoints[rng.NextBelow(endpoints.size())];
    // /api/orders has a bad day: 8% of its requests fail; others mostly succeed.
    int64_t status = 200;
    const double roll = rng.NextDouble();
    if (endpoint == "/api/orders" ? roll < 0.08 : roll < 0.005) {
      status = 500 + static_cast<int64_t>(rng.NextBelow(4));
    } else if (roll > 0.97) {
      status = 404;
    }
    const auto latency = static_cast<int64_t>(rng.Exponential(25000));
    std::ostringstream line;
    line << endpoint << ' ' << status << ' ' << latency;
    lines.push_back(line.str());
  }
  return lines;
}

LogLine ParseLine(const std::string& raw) {
  LogLine parsed;
  std::istringstream stream(raw);
  stream >> parsed.endpoint >> parsed.status >> parsed.latency_us;
  return parsed;
}

}  // namespace

int main() {
  monotasks::EngineConfig config;
  config.num_workers = 4;
  config.cores_per_worker = 2;
  config.disks_per_worker = 2;
  config.time_scale = 200.0;
  monotasks::MonoClient client(config);

  std::puts("Generating 60k synthetic log lines...");
  const std::vector<std::string> raw_logs = GenerateLogs(60000, /*seed=*/2026);

  using EndpointErrors = std::pair<std::string, int64_t>;
  auto logs = client.Parallelize<std::string>(raw_logs, 16);
  auto server_errors =
      logs.Map<EndpointErrors>([](const std::string& raw) {
            const LogLine parsed = ParseLine(raw);
            return EndpointErrors{parsed.endpoint, parsed.status >= 500 ? 1 : 0};
          })
          .Filter([](const EndpointErrors& e) { return e.second > 0; });
  auto per_endpoint = monotasks::ReduceByKey<std::string, int64_t>(
      server_errors, [](const int64_t& a, const int64_t& b) { return a + b; }, 4);
  auto ranked = per_endpoint.SortBy<int64_t>(
      [](const EndpointErrors& e) { return -e.second; }, 1);

  std::puts("\n5xx errors by endpoint (worst first):");
  for (const auto& [endpoint, errors] : ranked.Collect()) {
    std::printf("  %-12s %6ld errors\n", endpoint.c_str(), errors);
  }

  // Join the error counts against the service-ownership table (a two-parent
  // shuffle, like the paper's BDB query 3) to page the right teams.
  using Owner = std::pair<std::string, std::string>;
  auto owners = client.Parallelize<Owner>(
      {{"/api/users", std::string("identity-team")},
       {"/api/orders", std::string("checkout-team")},
       {"/api/cart", std::string("checkout-team")},
       {"/api/search", std::string("discovery-team")},
       {"/healthz", std::string("platform-team")},
       {"/login", std::string("identity-team")}},
      2);
  auto paged = monotasks::Join<std::string, int64_t, std::string>(per_endpoint, owners, 4);
  std::puts("\nWho to page:");
  for (const auto& [endpoint, hit] : paged.Collect()) {
    if (hit.first >= 100) {
      std::printf("  %-12s -> %s (%ld errors)\n", endpoint.c_str(),
                  hit.second.c_str(), hit.first);
    }
  }

  const auto& metrics = client.last_job_metrics();
  std::puts("\nWhere the time went (monotask service seconds per stage):");
  for (const auto& stage : metrics.stages) {
    std::printf("  %-8s compute %7.4f | disk r/w %7.4f / %7.4f | network %7.4f"
                "  (%d tasks)\n",
                stage.name.c_str(), stage.compute_seconds, stage.disk_read_seconds,
                stage.disk_write_seconds, stage.network_seconds, stage.num_tasks);
  }
  std::puts("\nNote: parsing dominates compute; the shuffle is tiny after filtering —");
  std::puts("exactly the kind of conclusion monotask instrumentation hands you for free.");
  return 0;
}
